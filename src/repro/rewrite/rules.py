"""The seed rewrite rules.

Every rule rebuilds through one helper (:func:`_rebuild`) and one audited
weight clone (:func:`repro.graph.transforms.clone_weights`), and returns
full provenance for the translation validator.  The fusion rules build
:class:`~repro.graph.ops.FusedOp` hosts, which execute the *exact same
kernels in the same order* as the unfused nodes -- fusion here is a graph
/ planning change, not a numerical one, so the bit-identity obligation is
dischargeable (classic weight-refolding, e.g. ``scale * W``, is not
bit-stable under float32 and is deliberately not what these rules do).

Seed set:

* :class:`FoldConvBatchNorm` -- absorb a BatchNorm/Bias into the preceding
  convolution as a fused epilogue stage (the paper's conv+BN subgraph
  seed);
* :class:`FusePointwiseChains` -- collapse runs of >= 2 single-input
  pointwise ops into one fused node (elementwise-chain fusion);
* :class:`PruneDeadNodes` / :class:`PruneIdentityOps` -- remove nodes no
  output can observe, and provably value-preserving ops (1x1/1 pooling,
  ``scale==1, shift==0`` BatchNorm, all-zero Bias);
* :class:`LayoutAwareCSE` -- merge structurally identical twins only when
  op, resolved inputs, weights *and* output layout (TensorSpec) all agree;
* :class:`RebatchRule` -- the ported ``rebatch_graph`` (first production
  rule): rescale the interface batch, sharing weight arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graph.ir import Graph, Node
from repro.graph.ops import BatchNorm, Bias, Conv, FusedOp, OpSpec, Pool, flatten_stages
from repro.graph.transforms import clone_weights
from repro.rewrite.rule import RemovedNode, Rewrite, Rule

__all__ = [
    "FoldConvBatchNorm",
    "FusePointwiseChains",
    "PruneDeadNodes",
    "PruneIdentityOps",
    "LayoutAwareCSE",
    "RebatchRule",
    "RULES",
]


def _rebuild(
    graph: Graph,
    drop: frozenset | set = frozenset(),
    forward: dict[int, int] | None = None,
    replace: dict[int, tuple[OpSpec, dict, tuple[int, ...]]] | None = None,
) -> Graph:
    """Rebuild ``graph`` dropping ``drop``, redirecting consumers of
    ``forward`` keys to their values (old-graph ids, chased transitively),
    and substituting ``replace`` entries ``(op, weights, old_input_ids)``
    in place of the keyed nodes (same name, new op)."""
    forward = forward or {}
    replace = replace or {}
    out = Graph(graph.name)
    mapping: dict[int, Node] = {}

    def resolve(old_id: int) -> Node:
        while old_id in forward:
            old_id = forward[old_id]
        return mapping[old_id]

    for node in graph.nodes:
        if node.node_id in drop or node.node_id in forward:
            continue
        if node.is_input:
            new = out.input(node.spec, name=node.name)
        elif node.node_id in replace:
            op, weights, old_inputs = replace[node.node_id]
            new = out.add(op, [resolve(i) for i in old_inputs], name=node.name)
            new.weights = dict(weights)
        else:
            new = out.add(node.op, [resolve(i) for i in node.inputs], name=node.name)
            new.weights = clone_weights(node)
        mapping[node.node_id] = new
    for o in graph.output_nodes:
        out.mark_output(resolve(o.node_id))
    out.validate()
    return out


def _live_ids(graph: Graph) -> set[int]:
    live: set[int] = set()
    stack = [n.node_id for n in graph.output_nodes]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.node(nid).inputs)
    return live


def _same_weights(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    if a.keys() != b.keys():
        return False
    return all(w is b[k] or np.array_equal(w, b[k]) for k, w in a.items())


def _stage_split(node: Node) -> tuple[tuple[OpSpec, ...], list[dict[str, np.ndarray]]]:
    """A node's plain-op pipeline and the matching per-stage weight dicts."""
    if isinstance(node.op, FusedOp):
        return node.op.stages, node.op.split_weights(node.weights)
    return (node.op,), [dict(node.weights)]


class FoldConvBatchNorm(Rule):
    """Fold a BatchNorm/Bias into its sole-producing convolution.

    The BN node becomes a :class:`FusedOp` host whose primary is the conv
    (or extends an already-fused conv's epilogue); the conv node vanishes.
    Applies only when the conv's *only* consumer is the BN and the conv is
    not itself a graph output (its raw activation must stay observable).
    """

    name = "fold-conv-bn"

    def apply(self, graph: Graph) -> Rewrite | None:
        graph.init_weights()
        output_ids = {n.node_id for n in graph.output_nodes}
        claimed: set[int] = set()
        forward: dict[int, int] = {}
        replace: dict[int, tuple[OpSpec, dict, tuple[int, ...]]] = {}
        removed: list[RemovedNode] = []
        fused: dict[str, tuple[str, ...]] = {}
        for node in graph.nodes:
            if not isinstance(node.op, (BatchNorm, Bias)) or node.node_id in claimed:
                continue
            pred = graph.node(node.inputs[0])
            primary = pred.op.primary if isinstance(pred.op, FusedOp) else pred.op
            if not isinstance(primary, Conv):
                continue
            if graph.consumers(pred) != (node.node_id,):
                continue
            if pred.node_id in output_ids or pred.node_id in claimed:
                continue
            stages, stage_weights = _stage_split(pred)
            stages = stages + (node.op,)
            stage_weights.append(dict(node.weights))
            replace[node.node_id] = (
                FusedOp(stages[0], stages[1:]),
                FusedOp.join_weights(stage_weights),
                pred.inputs,
            )
            forward[pred.node_id] = node.node_id
            removed.append(RemovedNode(pred.name, "fused", into=node.name))
            fused[node.name] = (pred.name, node.name)
            claimed.update((pred.node_id, node.node_id))
        if not replace:
            return None
        return Rewrite(self.name, _rebuild(graph, forward=forward, replace=replace),
                       removed=tuple(removed), fused=fused,
                       detail=f"folded {len(replace)} BN/bias node(s) into convs")


class FusePointwiseChains(Rule):
    """Collapse maximal runs of >= 2 single-input pointwise ops into one
    fused node.  Interior members must be sole-consumed and must not be
    graph outputs; the run's exit keeps its name (and output marking)."""

    name = "fuse-pointwise"

    @staticmethod
    def _chainable(node: Node) -> bool:
        return not node.is_input and node.op.arity == 1 and node.op.is_pointwise

    def apply(self, graph: Graph) -> Rewrite | None:
        output_ids = {n.node_id for n in graph.output_nodes}
        claimed: set[int] = set()
        forward: dict[int, int] = {}
        replace: dict[int, tuple[OpSpec, dict, tuple[int, ...]]] = {}
        removed: list[RemovedNode] = []
        fused: dict[str, tuple[str, ...]] = {}
        for node in graph.nodes:
            if node.node_id in claimed or not self._chainable(node):
                continue
            chain = [node]
            current = node
            while current.node_id not in output_ids:
                consumers = graph.consumers(current)
                if len(consumers) != 1:
                    break
                nxt = graph.node(consumers[0])
                if not self._chainable(nxt):
                    break
                chain.append(nxt)
                current = nxt
            if len(chain) < 2:
                continue
            stages: tuple[OpSpec, ...] = ()
            stage_weights: list[dict[str, np.ndarray]] = []
            for member in chain:
                s, w = _stage_split(member)
                stages = stages + s
                stage_weights.extend(w)
            host = chain[-1]
            replace[host.node_id] = (
                FusedOp(stages[0], stages[1:]),
                FusedOp.join_weights(stage_weights),
                chain[0].inputs,
            )
            for member in chain[:-1]:
                forward[member.node_id] = host.node_id
                removed.append(RemovedNode(member.name, "fused", into=host.name))
            fused[host.name] = tuple(m.name for m in chain)
            claimed.update(m.node_id for m in chain)
        if not replace:
            return None
        return Rewrite(self.name, _rebuild(graph, forward=forward, replace=replace),
                       removed=tuple(removed), fused=fused,
                       detail=f"fused {len(replace)} pointwise chain(s)")


class PruneDeadNodes(Rule):
    """Drop every non-input node from which no graph output is reachable."""

    name = "prune-dead"

    def apply(self, graph: Graph) -> Rewrite | None:
        live = _live_ids(graph)
        dead = [n for n in graph.nodes if n.node_id not in live and not n.is_input]
        if not dead:
            return None
        return Rewrite(self.name,
                       _rebuild(graph, drop={n.node_id for n in dead}),
                       removed=tuple(RemovedNode(n.name, "dead") for n in dead),
                       detail=f"dropped {len(dead)} dead node(s)")


class PruneIdentityOps(Rule):
    """Remove ops that provably compute the identity on their input.

    Matches 1x1/stride-1/unpadded pooling windows, BatchNorm with
    materialized ``scale == 1`` and ``shift == 0``, and all-zero Bias.
    Weight-carrying candidates only match when their weights are present --
    the rule never materializes weights itself, so profile-mode graphs
    pass through untouched."""

    name = "prune-identity"

    @staticmethod
    def _is_identity(node: Node) -> bool:
        op = node.op
        if isinstance(op, Pool):
            return (all(k == 1 for k in op.kernel)
                    and all(s == 1 for s in op.stride)
                    and all(p == 0 for p in op.padding))
        if isinstance(op, BatchNorm):
            w = node.weights
            return bool(w) and bool(np.all(w["scale"] == 1.0)) and not np.any(w["shift"])
        if isinstance(op, Bias):
            w = node.weights
            return bool(w) and not np.any(w["bias"])
        return False

    def apply(self, graph: Graph) -> Rewrite | None:
        output_ids = {n.node_id for n in graph.output_nodes}
        forward: dict[int, int] = {}
        removed: list[RemovedNode] = []
        for node in graph.nodes:
            if node.is_input or node.node_id in output_ids:
                continue
            if node.op.arity != 1 or not self._is_identity(node):
                continue
            forward[node.node_id] = node.inputs[0]
            removed.append(RemovedNode(node.name, "identity",
                                       into=graph.node(node.inputs[0]).name))
        if not forward:
            return None
        return Rewrite(self.name, _rebuild(graph, forward=forward),
                       removed=tuple(removed),
                       detail=f"removed {len(forward)} identity op(s)")


class LayoutAwareCSE(Rule):
    """Merge twin nodes: identical op, resolved inputs, weights, *and*
    output layout (TensorSpec).  Graph inputs and outputs never merge."""

    name = "cse"

    def apply(self, graph: Graph) -> Rewrite | None:
        graph.init_weights()
        output_ids = {n.node_id for n in graph.output_nodes}
        seen: dict = {}
        forward: dict[int, int] = {}
        removed: list[RemovedNode] = []
        for node in graph.nodes:
            if node.is_input or node.node_id in output_ids:
                continue
            resolved = tuple(forward.get(i, i) for i in node.inputs)
            key = (node.op, resolved)
            prior = seen.get(key)
            if prior is not None:
                twin = graph.node(prior)
                if twin.spec == node.spec and _same_weights(twin.weights, node.weights):
                    forward[node.node_id] = prior
                    removed.append(RemovedNode(node.name, "merged", into=twin.name))
                    continue
            seen.setdefault(key, node.node_id)
        if not forward:
            return None
        return Rewrite(self.name, _rebuild(graph, forward=forward),
                       removed=tuple(removed),
                       detail=f"merged {len(forward)} duplicate node(s)")


class RebatchRule(Rule):
    """Rescale every graph input's batch dimension (the ported
    ``rebatch_graph``).  All downstream specs re-infer; weight *arrays* are
    shared with the source graph through the audited clone helper -- the
    obligation (``shares_weights``) the validator checks by object
    identity, because value-equal copies would silently double memory and
    break the serving layer's bit-identity argument."""

    name = "rebatch"
    shares_weights = True

    def __init__(self, batch: int) -> None:
        if batch < 1:
            raise ReproError(f"batch must be >= 1, got {batch}")
        self.batch = int(batch)

    def apply(self, graph: Graph) -> Rewrite | None:
        if all(n.spec.batch == self.batch for n in graph.input_nodes):
            return None
        from repro.graph.tensorspec import TensorSpec

        out = Graph(graph.name)
        mapping: dict[int, Node] = {}
        for node in graph.nodes:
            if node.is_input:
                spec = TensorSpec(self.batch, node.spec.channels,
                                  node.spec.spatial, node.spec.dtype)
                new = out.input(spec, name=node.name)
            else:
                new = out.add(node.op, [mapping[i] for i in node.inputs], name=node.name)
                new.weights = clone_weights(node)
            mapping[node.node_id] = new
        for o in graph.output_nodes:
            out.mark_output(mapping[o.node_id])
        out.validate()
        return Rewrite(self.name, out, batch=self.batch,
                       detail=f"rebatched interface to {self.batch} sample(s)")


#: Name registry for ``--rules`` selection (rebatch is parameterized and is
#: instantiated explicitly by its callers, not by name).
RULES: dict[str, type[Rule]] = {
    FoldConvBatchNorm.name: FoldConvBatchNorm,
    FusePointwiseChains.name: FusePointwiseChains,
    PruneDeadNodes.name: PruneDeadNodes,
    PruneIdentityOps.name: PruneIdentityOps,
    LayoutAwareCSE.name: LayoutAwareCSE,
}
