"""Rule-based graph rewriting with machine-checkable proof obligations.

The framework (:mod:`repro.rewrite.rule`), the seed rules
(:mod:`repro.rewrite.rules`), and the validating runner
(:mod:`repro.rewrite.runner`).  Soundness is never assumed: every rule
application can be (and in the engine's strict mode *is*) checked by the
translation-validation pass in :func:`repro.analysis.validate_rewrite`.
"""

from repro.rewrite.rule import RemovedNode, Rewrite, Rule
from repro.rewrite.rules import (
    RULES,
    FoldConvBatchNorm,
    FusePointwiseChains,
    LayoutAwareCSE,
    PruneDeadNodes,
    PruneIdentityOps,
    RebatchRule,
)
from repro.rewrite.runner import (
    FixedPoint,
    Once,
    RewriteReport,
    RewriteStep,
    RuleBatch,
    RuleRunner,
    batches_from_names,
    default_batches,
)

__all__ = [
    "Rule",
    "Rewrite",
    "RemovedNode",
    "RULES",
    "FoldConvBatchNorm",
    "FusePointwiseChains",
    "LayoutAwareCSE",
    "PruneDeadNodes",
    "PruneIdentityOps",
    "RebatchRule",
    "Once",
    "FixedPoint",
    "RuleBatch",
    "RuleRunner",
    "RewriteStep",
    "RewriteReport",
    "default_batches",
    "batches_from_names",
]
