"""Rule batches and the validating runner.

A :class:`RuleBatch` groups rules under a scheduling policy -- :class:`Once`
(single sweep) or :class:`FixedPoint` (iterate until no rule fires, with a
hard iteration bound so a buggy rule pair cannot ping-pong forever).  The
:class:`RuleRunner` threads a graph through its batches and, after **every
individual rule application**, hands the before/after pair to the
translation validator (:func:`repro.analysis.validate_rewrite`) -- so a
violation is pinned to the exact rule and step that introduced it, not to
the whole pipeline.  The aggregate :class:`RewriteReport` is the currency
the engine, CLI, and metrics manifest consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.diagnostics import AnalysisReport
from repro.errors import ReproError
from repro.graph.ir import Graph
from repro.rewrite.rule import Rewrite, Rule
from repro.rewrite.rules import (
    RULES,
    FoldConvBatchNorm,
    FusePointwiseChains,
    LayoutAwareCSE,
    PruneDeadNodes,
    PruneIdentityOps,
)

__all__ = [
    "Once",
    "FixedPoint",
    "RuleBatch",
    "RewriteStep",
    "RewriteReport",
    "RuleRunner",
    "default_batches",
    "batches_from_names",
]

#: Validation levels: "off" trusts the rules, "static" re-derives structure
#: and provenance, "full" additionally discharges the differential
#: obligation through the reference executor.
VALIDATE_LEVELS = ("off", "static", "full")


@dataclass(frozen=True)
class Once:
    """Run each rule in the batch exactly one time, in order."""


@dataclass(frozen=True)
class FixedPoint:
    """Iterate the batch until no rule fires, at most ``limit`` rounds."""

    limit: int = 4


@dataclass(frozen=True)
class RuleBatch:
    name: str
    policy: Once | FixedPoint
    rules: tuple[Rule, ...]


def default_batches() -> tuple[RuleBatch, ...]:
    """The seed pipeline: canonicalize, fuse to a fixed point, clean up."""
    return (
        RuleBatch("canonicalize", Once(),
                  (LayoutAwareCSE(), PruneIdentityOps(), PruneDeadNodes())),
        RuleBatch("fuse", FixedPoint(4),
                  (FoldConvBatchNorm(), FusePointwiseChains())),
        RuleBatch("cleanup", Once(), (PruneDeadNodes(),)),
    )


def batches_from_names(names: Iterable[str]) -> tuple[RuleBatch, ...]:
    """Build a single fixed-point batch from registry names (CLI ``--rules``)."""
    rules = []
    for name in names:
        cls = RULES.get(name)
        if cls is None:
            raise ReproError(
                f"unknown rewrite rule {name!r}; known: {', '.join(sorted(RULES))}")
        rules.append(cls())
    if not rules:
        raise ReproError("no rewrite rules selected")
    return (RuleBatch("selected", FixedPoint(4), tuple(rules)),)


@dataclass
class RewriteStep:
    """One rule application, with its own validation verdict."""

    batch: str
    iteration: int
    rule: str
    nodes_before: int
    nodes_after: int
    rewrite: Rewrite
    validation: AnalysisReport | None = None

    @property
    def ok(self) -> bool:
        return self.validation is None or self.validation.ok


@dataclass
class RewriteReport:
    """Everything one :meth:`RuleRunner.run` did, and whether it was sound."""

    graph: Graph
    nodes_before: int
    validated: str = "off"
    steps: list[RewriteStep] = field(default_factory=list)
    validation: AnalysisReport = field(default_factory=AnalysisReport)

    @property
    def nodes_after(self) -> int:
        return len(self.graph)

    @property
    def ok(self) -> bool:
        return self.validation.ok

    @property
    def nodes_removed(self) -> int:
        return sum(s.rewrite.nodes_removed for s in self.steps)

    @property
    def nodes_fused(self) -> int:
        return sum(s.rewrite.nodes_fused for s in self.steps)

    def rules_fired(self) -> dict[str, int]:
        fired: dict[str, int] = {}
        for step in self.steps:
            fired[step.rule] = fired.get(step.rule, 0) + 1
        return fired

    def manifest_dict(self) -> dict:
        """JSON-ready provenance block for the metrics manifest."""
        return {
            "validated": self.validated,
            "ok": self.ok,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "nodes_removed": self.nodes_removed,
            "nodes_fused": self.nodes_fused,
            "rules_fired": self.rules_fired(),
            "steps": [
                {
                    "batch": s.batch,
                    "iteration": s.iteration,
                    "rule": s.rule,
                    "nodes_before": s.nodes_before,
                    "nodes_after": s.nodes_after,
                    "detail": s.rewrite.detail,
                }
                for s in self.steps
            ],
        }

    def summary(self) -> str:
        lines = [
            f"rewrite: {self.nodes_before} -> {self.nodes_after} nodes "
            f"({self.nodes_removed} removed, {self.nodes_fused} fused), "
            f"validation={self.validated} "
            f"[{'ok' if self.ok else 'FAILED'}]"
        ]
        for step in self.steps:
            verdict = "ok" if step.ok else "UNSOUND"
            lines.append(
                f"  [{step.batch}#{step.iteration}] {step.rule}: "
                f"{step.nodes_before} -> {step.nodes_after} nodes"
                + (f" ({step.rewrite.detail})" if step.rewrite.detail else "")
                + f" [{verdict}]")
        if not self.steps:
            lines.append("  (no rule fired)")
        for diag in self.validation.errors:
            lines.append(f"  {diag.render()}")
        return "\n".join(lines)


class RuleRunner:
    """Run rule batches over a graph, validating every application.

    ``validate`` is one of ``"off"``, ``"static"``, or ``"full"`` (static
    checks plus the differential obligation, run for each seed in
    ``seeds``).  The runner never raises on an unsound rewrite -- it keeps
    the diagnostics in the report (``report.ok``) so callers choose the
    policy; the engine raises :class:`~repro.errors.RewriteError`, the CLI
    exits nonzero.  The final graph in the report is the last *validated*
    state: a step that fails validation is excluded, and its batch is
    abandoned rather than iterated on an unsound graph.
    """

    def __init__(self, batches: Sequence[RuleBatch] | None = None,
                 validate: str = "static", seeds: Sequence[int] = (0,)) -> None:
        if validate not in VALIDATE_LEVELS:
            raise ReproError(
                f"validate must be one of {VALIDATE_LEVELS}, got {validate!r}")
        self.batches = tuple(batches) if batches is not None else default_batches()
        self.validate = validate
        self.seeds = tuple(seeds)

    def run(self, graph: Graph) -> RewriteReport:
        from repro.analysis.rewrite_validate import validate_rewrite

        if self.validate == "full":
            # The differential obligation compares before/after executions;
            # both must draw from one weight stream, fixed up front.
            graph.init_weights()
        report = RewriteReport(graph=graph, nodes_before=len(graph),
                               validated=self.validate)
        current = graph
        step_index = 0
        for batch in self.batches:
            rounds = 1 if isinstance(batch.policy, Once) else max(1, batch.policy.limit)
            abandoned = False
            for iteration in range(rounds):
                fired = False
                for rule in batch.rules:
                    rewrite = rule.apply(current)
                    if rewrite is None:
                        continue
                    step = RewriteStep(batch.name, iteration, rule.name,
                                       len(current), len(rewrite.graph), rewrite)
                    if self.validate != "off":
                        verdict = validate_rewrite(
                            current, rewrite, rule, step=step_index,
                            differential=self.validate == "full",
                            seeds=self.seeds)
                        step.validation = verdict
                        report.validation.extend(verdict)
                    report.steps.append(step)
                    step_index += 1
                    if not step.ok:
                        abandoned = True
                        break
                    current = rewrite.graph
                    fired = True
                if abandoned or not fired:
                    break
            if abandoned:
                break
        report.graph = current
        return report
