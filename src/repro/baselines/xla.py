"""TensorFlow XLA proxy baseline (section 4.2).

Models an XLA-compiled inference executable: like the TorchScript proxy it
runs whole-layer (slab) kernels with pointwise fusion, but XLA compiles the
entire graph into one executable with far fewer host synchronization points,
so barriers are amortized over clusters of operator groups.
"""

from __future__ import annotations

from repro.baselines.conventional import ConventionalExecutor
from repro.graph.ir import Graph
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["XlaBaseline"]


class XlaBaseline(ConventionalExecutor):
    """Whole-layer kernels + fusion, barriers amortized across the graph."""

    name = "xla"

    def __init__(self, graph: Graph, spec: GPUSpec = A100, cluster: int = 8) -> None:
        super().__init__(graph, spec=spec, fuse=True, tile=None, sync_every=cluster)
