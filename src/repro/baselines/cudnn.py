"""The tiled cuDNN baseline (section 4.2).

"The cuDNN baseline is a set of C++ benchmarks implemented with tiled cuDNN
API calls for the evaluated models": every operator (fusion group) is
executed as a grid of spatial tiles over row-major activations, with a
device synchronization after each operator -- the execution pattern of
Fig. 2(a)/Fig. 3(a) whose halo re-reads and full-activation DRAM sweeps
merged execution eliminates.
"""

from __future__ import annotations

from repro.baselines.conventional import ConventionalExecutor
from repro.graph.ir import Graph
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["CudnnBaseline", "default_tile_for"]


def default_tile_for(graph: Graph) -> int:
    """Spatial tile side: 32 for 2-D models, 16 for 3-D (same tile volume
    order as the thread-block tiles cuDNN picks)."""
    for node in graph.nodes:
        if node.spec.spatial_ndim >= 3:
            return 16
    return 32


class CudnnBaseline(ConventionalExecutor):
    """Tiled per-operator execution with cuDNN conv+pointwise fusion."""

    name = "cudnn"

    def __init__(self, graph: Graph, spec: GPUSpec = A100, tile: int | None = None) -> None:
        super().__init__(
            graph,
            spec=spec,
            fuse=True,
            tile=tile if tile is not None else default_tile_for(graph),
            sync_every=1,
        )
