"""Operator fusion pass shared by the conventional baselines.

Implements the fusion the paper's baselines have: a *primary* operator
(conv, pool, dense, ...) absorbs the chain of pointwise operators that
immediately follows it (bias, batch-norm, activations, residual adds whose
other operand is already materialized) into one kernel, eliminating the
intermediate activation round-trips for those ops.  This is cuDNN's backend
fused-operation-graph capability and the core of what TorchScript/XLA do for
these CNNs; what none of them can fuse is a chain of *convolutions* -- the
gap BrickDL's merged execution targets (section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.ir import Graph, Node

__all__ = ["FusionGroup", "fuse_graph"]


@dataclass
class FusionGroup:
    """A primary op plus the pointwise chain fused onto it."""

    primary: Node
    fused: list[Node] = field(default_factory=list)

    @property
    def nodes(self) -> list[Node]:
        return [self.primary, *self.fused]

    @property
    def output(self) -> Node:
        return self.fused[-1] if self.fused else self.primary

    @property
    def num_kernels(self) -> int:
        """Kernel launches this group costs (one: that is the point)."""
        return 1

    def describe(self) -> str:
        ops = "+".join(n.op.kind for n in self.nodes)
        return f"[{self.primary.name}: {ops}]"


def fuse_graph(graph: Graph, enabled: bool = True) -> list[FusionGroup]:
    """Partition all non-input nodes into fusion groups, in execution order.

    A follower is absorbed when it is pointwise, it is the *sole* consumer
    chain of the group's current output, and every *other* input it has was
    produced before this group's primary (so execution order stays valid for
    residual adds).
    """
    groups: list[FusionGroup] = []
    absorbed: set[int] = set()
    for node in graph.nodes:
        if node.is_input or node.node_id in absorbed:
            continue
        group = FusionGroup(primary=node)
        if enabled:
            _absorb_chain(graph, group, absorbed)
        groups.append(group)
    return groups


def _absorb_chain(graph: Graph, group: FusionGroup, absorbed: set[int]) -> None:
    current = group.primary
    while True:
        consumers = graph.consumers(current)
        if len(consumers) != 1:
            return
        nxt = graph.node(consumers[0])
        if not nxt.op.is_pointwise:
            return
        others = [i for i in nxt.inputs if i != current.node_id]
        if any(i >= group.primary.node_id for i in others):
            return
        group.fused.append(nxt)
        absorbed.add(nxt.node_id)
        current = nxt
