"""Shared runner for conventional (row-major, layer-by-layer) baselines.

All three baselines of section 4.2 execute the same fusion-grouped graph
layer by layer on dense row-major activations; they differ only in kernel
granularity (small tiles vs SM-wide slabs), fusion, and synchronization
cadence.  :class:`ConventionalExecutor` factors that shape; the concrete
baselines are thin configurations of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.baselines.fusion import fuse_graph
from repro.baselines.tiled import (
    adaptive_tiles,
    compute_group_values,
    run_group_global,
    run_group_tiled,
    slab_tiles,
)
from repro.core.handles import DenseHandle
from repro.errors import ExecutionError
from repro.graph.ir import Graph
from repro.graph.regions import Region
from repro.gpusim.device import Device, RunMetrics
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["BaselineResult", "ConventionalExecutor"]

TilePolicy = Callable[[tuple[int, ...], GPUSpec], Iterator[Region]]


@dataclass
class BaselineResult:
    """Outputs and simulator metrics of one baseline run."""

    name: str
    outputs: dict[str, np.ndarray] | None
    metrics: RunMetrics
    num_groups: int

    @property
    def total_time(self) -> float:
        return self.metrics.total_time


class ConventionalExecutor:
    """Layer-by-layer executor over dense activations.

    Parameters
    ----------
    graph:
        The model to execute.
    spec:
        Simulated device.
    fuse:
        Enable conv+pointwise operator fusion (all paper baselines have it).
    tile:
        Spatial tile side for compute kernels; ``None`` selects SM-wide
        slabs (whole-layer kernels).
    sync_every:
        Device synchronization cadence in fusion groups (1 = barrier after
        every operator group, like sequential cuDNN calls).
    """

    name = "conventional"

    def __init__(
        self,
        graph: Graph,
        spec: GPUSpec = A100,
        fuse: bool = True,
        tile: int | None = 32,
        sync_every: int = 1,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.spec = spec
        self.tile = tile
        self.sync_every = max(1, sync_every)
        self.groups = fuse_graph(graph, enabled=fuse)

    def _tiles(self, extents: tuple[int, ...]) -> Iterator[Region]:
        if self.tile is None:
            return slab_tiles(extents, self.spec.num_sms)
        return adaptive_tiles(extents, self.tile, self.spec.num_sms)

    def run(
        self,
        inputs: Mapping[str, np.ndarray] | np.ndarray | None = None,
        functional: bool = True,
        device: Device | None = None,
    ) -> BaselineResult:
        graph = self.graph
        device = device if device is not None else Device(self.spec)
        if functional:
            graph.init_weights()

        values: dict[int, np.ndarray] = {}
        handles: dict[int, DenseHandle] = {}
        for node in graph.input_nodes:
            buf = device.allocate(f"{graph.name}/{node.name}", node.spec.nbytes)
            data = None
            if functional:
                data = self._bind_input(node, inputs)
                values[node.node_id] = data
            handles[node.node_id] = DenseHandle(node.spec, buf, data)

        weight_buffers = self._allocate_weights(device)

        for gi, group in enumerate(self.groups):
            out_node = group.output
            out_buf = device.allocate(f"{graph.name}/{out_node.name}", out_node.spec.nbytes)
            out_data = None
            if functional:
                out_data = compute_group_values(graph, group, values)
                values[out_node.node_id] = out_data
                # Fused intermediates are never materialized; the fusion rule
                # guarantees they have no consumers outside the group.
            out_handle = DenseHandle(out_node.spec, out_buf, out_data)

            for node in group.nodes:
                wb = weight_buffers.get(node.node_id)
                if wb is not None:
                    device.memory.pin(wb)

            if group.primary.op.is_global or not out_node.spec.spatial:
                run_group_global(device, graph, group, handles, out_handle, weight_buffers, label=self.name)
            else:
                tiles = self._tiles(out_node.spec.spatial)
                run_group_tiled(device, graph, group, handles, out_handle, tiles, weight_buffers, label=self.name)

            for node in group.nodes:
                wb = weight_buffers.get(node.node_id)
                if wb is not None:
                    device.memory.unpin(wb)

            for node in group.nodes:
                handles[node.node_id] = out_handle  # fused nodes alias the output
            if (gi + 1) % self.sync_every == 0 or gi == len(self.groups) - 1:
                device.synchronize()

        outputs = None
        if functional:
            outputs = {n.name: values[n.node_id] for n in graph.output_nodes}
        return BaselineResult(
            name=self.name,
            outputs=outputs,
            metrics=device.finish(),
            num_groups=len(self.groups),
        )

    # -- helpers ---------------------------------------------------------------
    def _bind_input(self, node, inputs) -> np.ndarray:
        if inputs is None:
            raise ExecutionError("functional run requires input arrays")
        if isinstance(inputs, np.ndarray):
            arr = inputs
        else:
            arr = inputs[node.name]
        arr = np.asarray(arr, dtype=node.spec.dtype)
        if arr.shape != node.spec.shape:
            raise ExecutionError(f"input {node.name!r}: expected {node.spec.shape}, got {arr.shape}")
        return arr

    def _allocate_weights(self, device: Device):
        buffers = {}
        for node in self.graph.nodes:
            if node.is_input:
                continue
            input_specs = [self.graph.node(i).spec for i in node.inputs]
            nbytes = node.op.weight_bytes(input_specs)
            if nbytes:
                buffers[node.node_id] = device.allocate(f"{self.graph.name}/{node.name}/w", nbytes)
        return buffers
