"""Tiled execution of fusion groups on conventional row-major activations.

This is the machinery behind the paper's cuDNN baseline ("a set of C++
benchmarks implemented with tiled cuDNN API calls", section 4.2) and behind
the whole-layer kernels of the TorchScript/XLA proxies (slab tiles spanning
the SMs).  It is also reused by the BrickDL engine as the vendor-library
fallback for tiny layers and global operators (section 3.3.3).

Every tile is one task: it reads its (halo-enlarged) input region from the
producer's dense buffer with strided row-major accesses -- the address-stream
cost the brick layout exists to avoid -- reads the group's weights, and
writes its output tile.  Numerical results in functional mode are computed
once per group at full-tensor granularity (identical math, the tiling only
affects the access stream).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Mapping

import numpy as np

from repro.baselines.fusion import FusionGroup
from repro.core.handles import DenseHandle
from repro.errors import ExecutionError
from repro.graph.ir import Graph
from repro.graph.regions import Interval, Region
from repro.gpusim.device import Device
from repro.gpusim.trace import Buffer, Task, buffer_token
from repro.kernels import apply_node_full

__all__ = ["spatial_tiles", "slab_tiles", "run_group_tiled", "run_group_global", "compute_group_values"]


def spatial_tiles(extents: tuple[int, ...], tile: tuple[int, ...]) -> Iterator[Region]:
    """Row-major enumeration of tile regions covering ``extents``."""
    ranges = [range(0, e, t) for e, t in zip(extents, tile)]
    for starts in itertools.product(*ranges):
        yield Region(
            Interval(s, min(s + t, e)) for s, t, e in zip(starts, tile, extents)
        )


def adaptive_tiles(extents: tuple[int, ...], base_tile: int, num_sms: int) -> Iterator[Region]:
    """Tiles sized to saturate the device: shrink the nominal tile until the
    grid offers at least ~2 thread blocks per SM (or the tile bottoms out)."""
    tile = base_tile
    while tile > 4:
        count = math.prod(-(-e // min(tile, e)) for e in extents)
        if count >= 2 * num_sms:
            break
        tile //= 2
    return spatial_tiles(extents, tuple(min(tile, e) for e in extents))


def slab_tiles(extents: tuple[int, ...], num_slabs: int) -> Iterator[Region]:
    """Whole-layer kernels: split the first spatial dim into SM-wide slabs."""
    first = extents[0]
    slabs = min(num_slabs, first)
    step = -(-first // slabs)
    for lo in range(0, first, step):
        yield Region.from_bounds(
            [lo] + [0] * (len(extents) - 1),
            [min(lo + step, first)] + list(extents[1:]),
        )


def compute_group_values(
    graph: Graph, group: FusionGroup, values: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Full-tensor numerical result of a fusion group."""
    local: dict[int, np.ndarray] = dict(values)
    out = None
    for node in group.nodes:
        args = [local[i] for i in node.inputs]
        out = apply_node_full(node.op, args, node.weights)
        local[node.node_id] = out
    if out is None:
        raise ExecutionError(f"empty fusion group {group.describe()}")
    return out


def group_flops_per_out_element(graph: Graph, group: FusionGroup) -> float:
    total = 0.0
    for node in group.nodes:
        input_specs = [graph.node(i).spec for i in node.inputs]
        total += node.op.flops_per_element(input_specs)
    return total


def run_group_tiled(
    device: Device,
    graph: Graph,
    group: FusionGroup,
    handles: Mapping[int, DenseHandle],
    out_handle: DenseHandle,
    tiles: Iterator[Region],
    weight_buffers: Mapping[int, Buffer],
    label: str = "tile",
) -> int:
    """Emit one task per tile for a fusion group; returns the task count.

    ``handles`` maps producer node ids (outside the group) to their dense
    handles; ``out_handle`` receives the group output.
    """
    out_node = group.output
    primary = group.primary
    primary_specs = [graph.node(i).spec for i in primary.inputs]
    fpe = group_flops_per_out_element(graph, group)
    batch = out_node.spec.batch
    group_ids = {n.node_id for n in group.nodes}

    count = 0
    for region in tiles:
        for n in range(batch):
            task = Task(label=f"{label}/{out_node.name}/{tuple(iv.lo for iv in region)}",
                        node_id=out_node.node_id)
            # Primary inputs: halo-enlarged regions.  Each input handle's
            # whole-buffer token records the kernel-launch ordering against
            # the producing (possibly un-barriered) conversion kernel.
            for input_index, pred in enumerate(primary.inputs):
                maps = primary.op.rf_maps(primary_specs, input_index)
                need = Region(m.in_interval(iv) for m, iv in zip(maps, region))
                handles[pred].emit_region_read(task, n, need)
                task.acquire(buffer_token(handles[pred].buffer))
            # Side inputs of fused followers (residual adds): same tile region.
            for fnode in group.fused:
                for pred in fnode.inputs:
                    if pred not in group_ids:
                        handles[pred].emit_region_read(task, n, region)
                        task.acquire(buffer_token(handles[pred].buffer))
            for node in group.nodes:
                wb = weight_buffers.get(node.node_id)
                if wb is not None and wb.nbytes:
                    task.read(wb, 0, wb.nbytes)
            out_handle.emit_region_write(task, n, region)
            task.release(buffer_token(out_handle.buffer))
            task.flops = fpe * out_node.spec.channels * region.size
            device.submit(task)
            count += 1
    return count


def run_group_global(
    device: Device,
    graph: Graph,
    group: FusionGroup,
    handles: Mapping[int, DenseHandle],
    out_handle: DenseHandle,
    weight_buffers: Mapping[int, Buffer],
    label: str = "global",
) -> int:
    """One whole-tensor task for a global (un-tiled) group."""
    out_node = group.output
    task = Task(label=f"{label}/{out_node.name}", node_id=out_node.node_id)
    group_ids = {n.node_id for n in group.nodes}
    for node in group.nodes:
        for pred in node.inputs:
            if pred not in group_ids:
                handles[pred].emit_full_read(task)
                task.acquire(buffer_token(handles[pred].buffer))
        wb = weight_buffers.get(node.node_id)
        if wb is not None and wb.nbytes:
            task.read(wb, 0, wb.nbytes)
    out_handle.emit_full_write(task)
    task.release(buffer_token(out_handle.buffer))
    fpe = group_flops_per_out_element(graph, group)
    task.flops = fpe * out_node.spec.num_elements
    device.submit(task)
    return 1
