"""TorchScript (PyTorch JIT) proxy baseline (section 4.2).

Models the execution profile of a TorchScript-optimized inference graph:
whole-layer kernels (each operator launched once, spanning the SMs as
slabs), graph-level operator fusion of pointwise chains, and a
kernel-launch barrier per operator group.  Runs the identical graph on the
identical simulated device, differing from BrickDL precisely in layout
(row-major) and scheduling (layer-at-a-time) -- the axis Fig. 7 compares.
"""

from __future__ import annotations

from repro.baselines.conventional import ConventionalExecutor
from repro.graph.ir import Graph
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["TorchScriptBaseline"]


class TorchScriptBaseline(ConventionalExecutor):
    """Whole-layer kernels + pointwise fusion, one barrier per group."""

    name = "torchscript"

    def __init__(self, graph: Graph, spec: GPUSpec = A100) -> None:
        super().__init__(graph, spec=spec, fuse=True, tile=None, sync_every=1)
