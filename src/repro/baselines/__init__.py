"""Baseline execution systems (section 4.2).

* :mod:`repro.baselines.cudnn` -- the paper's primary baseline: per-operator
  *tiled* cuDNN calls on conventional row-major activations, with cuDNN's
  conv+pointwise fusion enabled.
* :mod:`repro.baselines.torchscript` / :mod:`repro.baselines.xla` -- proxies
  for the TorchScript-JIT and TensorFlow-XLA optimized graph executors:
  whole-layer kernels (SM-wide slabs), operator fusion, fewer barriers.
  They run the same graphs on the same simulated substrate, differing from
  BrickDL exactly on the axis the paper isolates (no brick layout, no merged
  execution).
* :mod:`repro.baselines.fusion` -- the shared operator-fusion pass.
* :mod:`repro.baselines.tiled` -- the shared tiled/slabbed op executor (also
  used by the BrickDL engine's vendor-library fallback for tiny layers).
"""

from repro.baselines.fusion import FusionGroup, fuse_graph
from repro.baselines.conventional import BaselineResult, ConventionalExecutor
from repro.baselines.cudnn import CudnnBaseline
from repro.baselines.torchscript import TorchScriptBaseline
from repro.baselines.xla import XlaBaseline

__all__ = [
    "FusionGroup",
    "fuse_graph",
    "BaselineResult",
    "ConventionalExecutor",
    "CudnnBaseline",
    "TorchScriptBaseline",
    "XlaBaseline",
]
