"""Graph visualization: Graphviz DOT export and plan-aware ASCII rendering.

``to_dot`` colors nodes by the execution plan's subgraph assignment when one
is supplied, making the partitioner's decisions visible at a glance;
``ascii_plan`` prints an indented text view for terminals.
"""

from __future__ import annotations

from repro.graph.ir import Graph

__all__ = ["to_dot", "ascii_plan"]

_PALETTE = ("#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
            "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00")


def _plan_colors(plan) -> dict[int, str]:
    colors: dict[int, str] = {}
    if plan is None:
        return colors
    for sub in plan.subgraphs:
        color = "#dddddd" if not sub.is_merged else _PALETTE[sub.index % len(_PALETTE)]
        for nid in sub.subgraph.node_ids:
            colors[nid] = color
    return colors


def to_dot(graph: Graph, plan=None) -> str:
    """Graphviz DOT source; merged subgraphs share a fill color."""
    colors = _plan_colors(plan)
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;",
             '  node [shape=box, style=filled, fontname="monospace", fontsize=10];']
    for node in graph.nodes:
        fill = colors.get(node.node_id, "#ffffff")
        shape = "ellipse" if node.is_input else "box"
        spatial = "x".join(map(str, node.spec.spatial)) if node.spec.spatial else "-"
        label = f"{node.name}\\n{node.op.kind} {node.spec.channels}ch {spatial}"
        lines.append(f'  n{node.node_id} [label="{label}", fillcolor="{fill}", shape={shape}];')
    for node in graph.nodes:
        for i in node.inputs:
            lines.append(f"  n{i} -> n{node.node_id};")
    for out in graph.output_nodes:
        lines.append(f"  n{out.node_id} [penwidth=2];")
    lines.append("}")
    return "\n".join(lines)


def ascii_plan(graph: Graph, plan) -> str:
    """A terminal rendering of the plan: subgraph blocks with their nodes."""
    lines = [f"{graph.name}: {len(plan.subgraphs)} subgraphs "
             f"({plan.merged_count} merged)"]
    for sub in plan.subgraphs:
        tag = sub.strategy.value
        brick = "x".join(map(str, sub.brick_shape)) if sub.brick_shape else "-"
        lines.append(f"+- subgraph {sub.index} [{tag}, brick {brick}]")
        for nid in sub.subgraph.node_ids:
            node = graph.node(nid)
            spatial = "x".join(map(str, node.spec.spatial)) if node.spec.spatial else "-"
            lines.append(f"|    {node.name:<30s} {node.op.kind:<14s} {node.spec.channels:>4d}ch {spatial}")
    lines.append("+-")
    return "\n".join(lines)
