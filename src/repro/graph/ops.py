"""Operator specifications for the DNN graph IR.

Each operator is described by an :class:`OpSpec` subclass that knows how to:

* infer its output :class:`~repro.graph.tensorspec.TensorSpec` from inputs,
* report its receptive-field maps (:mod:`repro.graph.regions`) per spatial
  dimension and per input -- the geometric contract BrickDL's merged
  execution relies on (section 3.2: ops whose input block of size ``X`` maps
  to output ``alpha X + beta`` are mergeable),
* count floating-point operations per output element (feeds the compute-time
  model of section 4.3.2),
* initialize deterministic inference weights, and
* classify itself for the partitioner: ``is_local`` (mergeable),
  ``is_reduction`` (preferred subgraph tail, e.g. pooling), ``is_global``
  (forces a subgraph boundary), ``is_pointwise`` (cuDNN-fusable with a
  preceding conv).

Operators are *stateless descriptions*; weight arrays live on graph nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.graph.regions import GlobalMap, IdentityMap, RFMap, StencilMap, TransposedMap
from repro.graph.tensorspec import TensorSpec

__all__ = [
    "OpSpec",
    "InputOp",
    "Conv",
    "ConvTranspose",
    "Pool",
    "GlobalAvgPool",
    "Activation",
    "BatchNorm",
    "Bias",
    "Add",
    "Mul",
    "Concat",
    "Flatten",
    "Dense",
    "Softmax",
    "FusedOp",
    "flatten_stages",
    "normalize_tuple",
]


def normalize_tuple(value: int | Sequence[int], ndim: int, name: str) -> tuple[int, ...]:
    """Broadcast a scalar hyper-parameter to one value per spatial dim."""
    if isinstance(value, int):
        return (value,) * ndim
    t = tuple(int(v) for v in value)
    if len(t) != ndim:
        raise ShapeError(f"{name} has {len(t)} entries for {ndim} spatial dims")
    return t


@dataclass(frozen=True)
class OpSpec:
    """Base class for operator specifications."""

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    @property
    def arity(self) -> int:
        return 1

    # -- classification ----------------------------------------------------
    @property
    def is_local(self) -> bool:
        """True when the op satisfies the paper's ``alpha X + beta`` block
        contract and can participate in merged execution."""
        return True

    @property
    def is_reduction(self) -> bool:
        """True for spatially reducing ops (pooling) -- the partitioner
        prefers to *end* subgraphs on these (section 3.3.1)."""
        return False

    @property
    def is_global(self) -> bool:
        """True for ops needing the full activation (global pooling, dense,
        softmax): they terminate a subgraph and run un-bricked."""
        return False

    @property
    def is_pointwise(self) -> bool:
        """True for elementwise ops a cuDNN engine can fuse onto a conv."""
        return False

    # -- geometry / cost ---------------------------------------------------
    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        raise NotImplementedError

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        """Receptive-field map per spatial dimension, for ``input_index``."""
        spec = inputs[input_index]
        return tuple(IdentityMap() for _ in spec.spatial)

    def flops(self, inputs: Sequence[TensorSpec], out_elements: int) -> int:
        """Floating point operations to produce ``out_elements`` outputs."""
        return out_elements * self.flops_per_element(inputs)

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 1

    def weight_bytes(self, inputs: Sequence[TensorSpec]) -> int:
        # Analytic: profile-mode runs size weight buffers without paying for
        # RNG materialization.  All weights are float32 (4 bytes).
        return sum(4 * math.prod(s) for s in self.weight_shapes(inputs).values())

    def weight_shapes(self, inputs: Sequence[TensorSpec]) -> dict[str, tuple[int, ...]]:
        """Shapes of the op's weights (empty for weightless ops).  Must agree
        with :meth:`init_weights`; ``tests/test_ops.py`` pins the pairing."""
        return {}

    def init_weights(self, inputs: Sequence[TensorSpec], rng: np.random.Generator) -> dict[str, np.ndarray]:
        """Deterministic inference weights (empty for weightless ops)."""
        return {}

    def _check_arity(self, inputs: Sequence[TensorSpec]) -> None:
        if len(inputs) != self.arity:
            raise ShapeError(f"{self.kind} expects {self.arity} inputs, got {len(inputs)}")


@dataclass(frozen=True)
class InputOp(OpSpec):
    """Graph source placeholder carrying the input activation spec."""

    spec: TensorSpec

    @property
    def arity(self) -> int:
        return 0

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        if inputs:
            raise ShapeError("InputOp takes no inputs")
        return self.spec

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 0


@dataclass(frozen=True)
class Conv(OpSpec):
    """N-dimensional convolution (2-D or 3-D, strided/dilated/grouped).

    ``groups == in_channels == out_channels`` expresses a depthwise conv.
    Padding is symmetric zero padding per spatial dim.
    """

    out_channels: int
    kernel: tuple[int, ...]
    stride: tuple[int, ...] | int = 1
    padding: tuple[int, ...] | int = 0
    dilation: tuple[int, ...] | int = 1
    groups: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        k = tuple(int(v) for v in (self.kernel if not isinstance(self.kernel, int) else (self.kernel,)))
        object.__setattr__(self, "kernel", k)
        nd = len(k)
        object.__setattr__(self, "stride", normalize_tuple(self.stride, nd, "stride"))
        object.__setattr__(self, "padding", normalize_tuple(self.padding, nd, "padding"))
        object.__setattr__(self, "dilation", normalize_tuple(self.dilation, nd, "dilation"))
        if self.out_channels < 1 or self.groups < 1:
            raise ShapeError(f"invalid conv: {self}")
        if self.out_channels % self.groups:
            raise ShapeError(f"out_channels {self.out_channels} not divisible by groups {self.groups}")

    @property
    def spatial_ndim(self) -> int:
        return len(self.kernel)

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        x = inputs[0]
        if x.spatial_ndim != self.spatial_ndim:
            raise ShapeError(f"conv kernel rank {self.spatial_ndim} vs activation rank {x.spatial_ndim}")
        if x.channels % self.groups:
            raise ShapeError(f"in_channels {x.channels} not divisible by groups {self.groups}")
        maps = self.rf_maps(inputs)
        spatial = tuple(m.out_extent(e) for m, e in zip(maps, x.spatial))
        return TensorSpec(x.batch, self.out_channels, spatial, x.dtype)

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        return tuple(
            StencilMap(stride=s, padding=p, k_eff=(k - 1) * d + 1)
            for k, s, p, d in zip(self.kernel, self.stride, self.padding, self.dilation)
        )

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        cin_per_group = inputs[0].channels // self.groups
        return 2 * cin_per_group * math.prod(self.kernel)

    def weight_shapes(self, inputs: Sequence[TensorSpec]) -> dict[str, tuple[int, ...]]:
        cin_per_group = inputs[0].channels // self.groups
        shapes = {"weight": (self.out_channels, cin_per_group, *self.kernel)}
        if self.bias:
            shapes["bias"] = (self.out_channels,)
        return shapes

    def init_weights(self, inputs: Sequence[TensorSpec], rng: np.random.Generator) -> dict[str, np.ndarray]:
        cin_per_group = inputs[0].channels // self.groups
        fan_in = cin_per_group * math.prod(self.kernel)
        w = rng.standard_normal((self.out_channels, cin_per_group, *self.kernel)).astype(np.float32)
        w /= math.sqrt(fan_in)
        out = {"weight": w}
        if self.bias:
            out["bias"] = (rng.standard_normal(self.out_channels) * 0.01).astype(np.float32)
        return out


@dataclass(frozen=True)
class ConvTranspose(OpSpec):
    """Transposed ("de-") convolution, used by DeepCAM's decoder."""

    out_channels: int
    kernel: tuple[int, ...]
    stride: tuple[int, ...] | int = 1
    padding: tuple[int, ...] | int = 0
    bias: bool = True
    output_padding: tuple[int, ...] | int = 0

    def __post_init__(self) -> None:
        k = tuple(int(v) for v in (self.kernel if not isinstance(self.kernel, int) else (self.kernel,)))
        object.__setattr__(self, "kernel", k)
        nd = len(k)
        object.__setattr__(self, "stride", normalize_tuple(self.stride, nd, "stride"))
        object.__setattr__(self, "padding", normalize_tuple(self.padding, nd, "padding"))
        object.__setattr__(self, "output_padding", normalize_tuple(self.output_padding, nd, "output_padding"))
        if self.out_channels < 1:
            raise ShapeError(f"invalid conv transpose: {self}")

    @property
    def spatial_ndim(self) -> int:
        return len(self.kernel)

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        x = inputs[0]
        if x.spatial_ndim != self.spatial_ndim:
            raise ShapeError("conv transpose rank mismatch")
        maps = self.rf_maps(inputs)
        spatial = tuple(m.out_extent(e) for m, e in zip(maps, x.spatial))
        return TensorSpec(x.batch, self.out_channels, spatial, x.dtype)

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        return tuple(
            TransposedMap(stride=s, padding=p, kernel=k, output_padding=op)
            for k, s, p, op in zip(self.kernel, self.stride, self.padding, self.output_padding)
        )

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        # Each output element accumulates ~ Cin * prod(k)/prod(s) taps.
        taps = max(1, math.prod(self.kernel) // math.prod(self.stride))
        return 2 * inputs[0].channels * taps

    def weight_shapes(self, inputs: Sequence[TensorSpec]) -> dict[str, tuple[int, ...]]:
        shapes = {"weight": (inputs[0].channels, self.out_channels, *self.kernel)}
        if self.bias:
            shapes["bias"] = (self.out_channels,)
        return shapes

    def init_weights(self, inputs: Sequence[TensorSpec], rng: np.random.Generator) -> dict[str, np.ndarray]:
        cin = inputs[0].channels
        fan_in = cin * math.prod(self.kernel)
        w = rng.standard_normal((cin, self.out_channels, *self.kernel)).astype(np.float32)
        w /= math.sqrt(fan_in)
        out = {"weight": w}
        if self.bias:
            out["bias"] = (rng.standard_normal(self.out_channels) * 0.01).astype(np.float32)
        return out


@dataclass(frozen=True)
class Pool(OpSpec):
    """Max or average pooling over spatial windows."""

    kernel: tuple[int, ...]
    stride: tuple[int, ...] | int | None = None
    padding: tuple[int, ...] | int = 0
    mode: str = "max"

    def __post_init__(self) -> None:
        k = tuple(int(v) for v in (self.kernel if not isinstance(self.kernel, int) else (self.kernel,)))
        object.__setattr__(self, "kernel", k)
        nd = len(k)
        stride = self.stride if self.stride is not None else k
        object.__setattr__(self, "stride", normalize_tuple(stride, nd, "stride"))
        object.__setattr__(self, "padding", normalize_tuple(self.padding, nd, "padding"))
        if self.mode not in ("max", "avg"):
            raise ShapeError(f"pool mode must be 'max' or 'avg', got {self.mode!r}")

    @property
    def is_reduction(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        x = inputs[0]
        if x.spatial_ndim != len(self.kernel):
            raise ShapeError("pool rank mismatch")
        maps = self.rf_maps(inputs)
        spatial = tuple(m.out_extent(e) for m, e in zip(maps, x.spatial))
        return TensorSpec(x.batch, x.channels, spatial, x.dtype)

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        return tuple(
            StencilMap(stride=s, padding=p, k_eff=k)
            for k, s, p in zip(self.kernel, self.stride, self.padding)
        )

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return math.prod(self.kernel)


@dataclass(frozen=True)
class GlobalAvgPool(OpSpec):
    """Global average pooling: collapses all spatial dims to 1 each.

    Requires the whole activation, so it is a *global* op that ends a
    BrickDL subgraph (section 3.3.1)."""

    @property
    def is_global(self) -> bool:
        return True

    @property
    def is_reduction(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        x = inputs[0]
        return TensorSpec(x.batch, x.channels, (1,) * x.spatial_ndim, x.dtype)

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        return tuple(GlobalMap(extent=e) for e in inputs[input_index].spatial)

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return math.prod(inputs[0].spatial)


@dataclass(frozen=True)
class Activation(OpSpec):
    """Pointwise non-linearity: relu / leaky_relu / sigmoid / tanh."""

    fn: str = "relu"
    negative_slope: float = 0.1

    _FNS = ("relu", "leaky_relu", "sigmoid", "tanh")

    def __post_init__(self) -> None:
        if self.fn not in self._FNS:
            raise ShapeError(f"unknown activation {self.fn!r}; choose from {self._FNS}")

    @property
    def is_pointwise(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        return inputs[0]

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 1 if self.fn in ("relu", "leaky_relu") else 4


@dataclass(frozen=True)
class BatchNorm(OpSpec):
    """Inference batch normalization: a per-channel affine ``scale*x + shift``.

    At inference time the running statistics are folded into two vectors, so
    the op is pointwise and mergeable; the *training*-time global reduction is
    out of scope (the paper targets inference)."""

    eps: float = 1e-5

    @property
    def is_pointwise(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        return inputs[0]

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 2

    def weight_shapes(self, inputs: Sequence[TensorSpec]) -> dict[str, tuple[int, ...]]:
        c = inputs[0].channels
        return {"scale": (c,), "shift": (c,)}

    def init_weights(self, inputs: Sequence[TensorSpec], rng: np.random.Generator) -> dict[str, np.ndarray]:
        c = inputs[0].channels
        return {
            "scale": (1.0 + 0.05 * rng.standard_normal(c)).astype(np.float32),
            "shift": (0.05 * rng.standard_normal(c)).astype(np.float32),
        }


@dataclass(frozen=True)
class Bias(OpSpec):
    """Standalone per-channel bias addition (used when folding fusions)."""

    @property
    def is_pointwise(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        return inputs[0]

    def weight_shapes(self, inputs: Sequence[TensorSpec]) -> dict[str, tuple[int, ...]]:
        return {"bias": (inputs[0].channels,)}

    def init_weights(self, inputs: Sequence[TensorSpec], rng: np.random.Generator) -> dict[str, np.ndarray]:
        return {"bias": (rng.standard_normal(inputs[0].channels) * 0.01).astype(np.float32)}


@dataclass(frozen=True)
class Add(OpSpec):
    """Elementwise addition of two same-shaped activations (residual skip)."""

    @property
    def arity(self) -> int:
        return 2

    @property
    def is_pointwise(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(f"add shape mismatch: {a.shape} vs {b.shape}")
        return a

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        return tuple(IdentityMap() for _ in inputs[input_index].spatial)


@dataclass(frozen=True)
class Mul(OpSpec):
    """Elementwise product of two same-shaped activations.

    Used by gradient graphs (activation-function VJPs multiply the upstream
    gradient by a mask) and by gating architectures."""

    @property
    def arity(self) -> int:
        return 2

    @property
    def is_pointwise(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(f"mul shape mismatch: {a.shape} vs {b.shape}")
        return a

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        return tuple(IdentityMap() for _ in inputs[input_index].spatial)


@dataclass(frozen=True)
class Concat(OpSpec):
    """Channel-dimension concatenation of ``n`` activations (Inception)."""

    num_inputs: int = 2

    @property
    def arity(self) -> int:
        return self.num_inputs

    @property
    def is_pointwise(self) -> bool:
        return False

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        first = inputs[0]
        for other in inputs[1:]:
            if other.batch != first.batch or other.spatial != first.spatial:
                raise ShapeError(f"concat spatial mismatch: {first} vs {other}")
        channels = sum(t.channels for t in inputs)
        return TensorSpec(first.batch, channels, first.spatial, first.dtype)

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        return tuple(IdentityMap() for _ in inputs[input_index].spatial)

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 0


@dataclass(frozen=True)
class Flatten(OpSpec):
    """Collapse channel and spatial dims into a feature vector."""

    @property
    def is_global(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        x = inputs[0]
        return TensorSpec(x.batch, x.channels * math.prod(x.spatial) if x.spatial else x.channels, (), x.dtype)

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 0


@dataclass(frozen=True)
class Dense(OpSpec):
    """Fully-connected layer on flattened features (classifier heads)."""

    out_features: int
    bias: bool = True

    @property
    def is_global(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        x = inputs[0]
        if x.spatial:
            raise ShapeError("Dense expects a flattened activation; insert Flatten first")
        return TensorSpec(x.batch, self.out_features, (), x.dtype)

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 2 * inputs[0].channels

    def weight_shapes(self, inputs: Sequence[TensorSpec]) -> dict[str, tuple[int, ...]]:
        shapes = {"weight": (self.out_features, inputs[0].channels)}
        if self.bias:
            shapes["bias"] = (self.out_features,)
        return shapes

    def init_weights(self, inputs: Sequence[TensorSpec], rng: np.random.Generator) -> dict[str, np.ndarray]:
        cin = inputs[0].channels
        w = (rng.standard_normal((self.out_features, cin)) / math.sqrt(cin)).astype(np.float32)
        out = {"weight": w}
        if self.bias:
            out["bias"] = (rng.standard_normal(self.out_features) * 0.01).astype(np.float32)
        return out


@dataclass(frozen=True)
class Softmax(OpSpec):
    """Softmax over the channel dimension (classifier output).

    Channel-wise softmax does not couple spatial positions, so it is local in
    the blocked (spatial) dimensions; BrickDL never blocks channels."""

    @property
    def is_pointwise(self) -> bool:
        return True

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        self._check_arity(inputs)
        return inputs[0]

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        return 5


@dataclass(frozen=True)
class FusedOp(OpSpec):
    """A primary operator with a chain of fused pointwise epilogue stages.

    ``FusedOp(conv, (bn, relu))`` computes ``relu(bn(conv(x)))`` as one graph
    node by running the *exact same kernels in the same order* as the unfused
    nodes would -- so fusion rewrites built on it are bit-identical by
    construction (no weight re-association, which float32 arithmetic would
    not preserve).  Classification, receptive-field geometry and arity all
    delegate to the primary: epilogue stages are arity-1 pointwise, so they
    change neither shapes nor the ``alpha X + beta`` block contract.

    Weights of all stages live in the host node's single weight dict: the
    primary's keys are unprefixed, epilogue stage ``i`` keys are prefixed
    ``fused{i}.`` (a dot, never a slash -- node names contain slashes and the
    NPZ sidecar keys split on the last one).
    """

    primary: OpSpec
    epilogue: tuple[OpSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "epilogue", tuple(self.epilogue))
        if isinstance(self.primary, (InputOp, FusedOp)):
            raise ShapeError(f"FusedOp primary cannot be {self.primary.kind}")
        if self.primary.is_global:
            raise ShapeError("FusedOp primary must not be a global op")
        if not self.epilogue:
            raise ShapeError("FusedOp needs at least one epilogue stage")
        for stage in self.epilogue:
            if isinstance(stage, FusedOp):
                raise ShapeError("FusedOp stages cannot nest")
            if stage.arity != 1 or not stage.is_pointwise:
                raise ShapeError(
                    f"FusedOp epilogue stage {stage.kind} must be arity-1 pointwise")

    @property
    def kind(self) -> str:
        return "fused[" + "+".join(s.kind for s in self.stages) + "]"

    @property
    def stages(self) -> tuple[OpSpec, ...]:
        return (self.primary, *self.epilogue)

    @property
    def arity(self) -> int:
        return self.primary.arity

    @property
    def is_local(self) -> bool:
        return self.primary.is_local

    @property
    def is_reduction(self) -> bool:
        return self.primary.is_reduction

    @property
    def is_pointwise(self) -> bool:
        return self.primary.is_pointwise

    def infer(self, inputs: Sequence[TensorSpec]) -> TensorSpec:
        spec = self.primary.infer(inputs)
        for stage in self.epilogue:
            spec = stage.infer([spec])
        return spec

    def rf_maps(self, inputs: Sequence[TensorSpec], input_index: int = 0) -> tuple[RFMap, ...]:
        # Epilogue stages are pointwise (identity maps), so the fused node's
        # geometry is exactly the primary's.
        return self.primary.rf_maps(inputs, input_index)

    def _stage_inputs(self, inputs: Sequence[TensorSpec]) -> list[list[TensorSpec]]:
        """Input specs seen by each stage, in order."""
        per_stage = [list(inputs)]
        spec = self.primary.infer(inputs)
        for stage in self.epilogue:
            per_stage.append([spec])
            spec = stage.infer([spec])
        return per_stage

    def flops_per_element(self, inputs: Sequence[TensorSpec]) -> int:
        # Epilogue outputs have as many elements as the primary's output
        # (pointwise), so per-element costs sum.
        return sum(stage.flops_per_element(ins)
                   for stage, ins in zip(self.stages, self._stage_inputs(inputs)))

    @staticmethod
    def stage_prefix(stage_index: int) -> str:
        """Weight-key prefix of stage ``stage_index`` (0 = primary: none)."""
        return "" if stage_index == 0 else f"fused{stage_index - 1}."

    def weight_shapes(self, inputs: Sequence[TensorSpec]) -> dict[str, tuple[int, ...]]:
        shapes: dict[str, tuple[int, ...]] = {}
        for i, (stage, ins) in enumerate(zip(self.stages, self._stage_inputs(inputs))):
            prefix = self.stage_prefix(i)
            for key, shape in stage.weight_shapes(ins).items():
                shapes[prefix + key] = shape
        return shapes

    def init_weights(self, inputs: Sequence[TensorSpec], rng: np.random.Generator) -> dict[str, np.ndarray]:
        weights: dict[str, np.ndarray] = {}
        for i, (stage, ins) in enumerate(zip(self.stages, self._stage_inputs(inputs))):
            prefix = self.stage_prefix(i)
            for key, value in stage.init_weights(ins, rng).items():
                weights[prefix + key] = value
        return weights

    def split_weights(self, weights: dict[str, np.ndarray]) -> list[dict[str, np.ndarray]]:
        """Partition a fused weight dict into one dict per stage."""
        per_stage: list[dict[str, np.ndarray]] = [{} for _ in self.stages]
        for key, value in weights.items():
            for i in range(len(self.epilogue), 0, -1):
                prefix = self.stage_prefix(i)
                if key.startswith(prefix):
                    per_stage[i][key[len(prefix):]] = value
                    break
            else:
                per_stage[0][key] = value
        return per_stage

    @staticmethod
    def join_weights(stage_weights: Sequence[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
        """Inverse of :meth:`split_weights`: prefix and merge per-stage dicts."""
        joined: dict[str, np.ndarray] = {}
        for i, stage in enumerate(stage_weights):
            prefix = FusedOp.stage_prefix(i)
            for key, value in stage.items():
                joined[prefix + key] = value
        return joined


def flatten_stages(op: OpSpec) -> tuple[OpSpec, ...]:
    """The plain-operator pipeline an op computes: its fused stages, or itself."""
    return op.stages if isinstance(op, FusedOp) else (op,)
