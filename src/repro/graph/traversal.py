"""Graph traversal utilities and subgraph views.

BrickDL's static analyses are traversal-heavy: partitioning walks the graph
in reverse accumulating data footprints (section 3.3.1), and the halo
analysis walks each subgraph in reverse composing receptive-field maps
(section 3.2.1).  This module provides the shared machinery:

* :func:`topological_order` / :func:`reverse_order`,
* :class:`SubgraphView` -- a contiguous-by-dependency slice of a graph with
  its own notion of entry/exit nodes, which is what the partitioner emits and
  both merged executors consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import GraphError
from repro.graph.ir import Graph, Node

__all__ = ["topological_order", "reverse_order", "SubgraphView", "subgraph_view"]


def topological_order(graph: Graph) -> list[Node]:
    """Nodes in dependency order.

    Node ids are assigned at insertion with inputs-before-use enforced, so
    insertion order *is* a topological order; this helper exists to make that
    contract explicit (and checked) at call sites.
    """
    nodes = list(graph.nodes)
    for node in nodes:
        for i in node.inputs:
            if i >= node.node_id:
                raise GraphError(f"node {node.name!r} consumes later node {i}")
    return nodes


def reverse_order(graph: Graph) -> list[Node]:
    """Nodes in reverse dependency order (the paper's reverse traversal)."""
    return list(reversed(topological_order(graph)))


@dataclass(frozen=True)
class SubgraphView:
    """A dependency-closed set of nodes within a parent graph.

    Attributes
    ----------
    graph:
        The parent graph.
    node_ids:
        Member node ids in topological order.
    entry_ids:
        Ids of *external* producer nodes whose outputs the subgraph reads
        (its inputs; not members).
    exit_ids:
        Member node ids whose outputs are consumed outside the subgraph (or
        are graph outputs) -- the activations the subgraph must materialize.
    """

    graph: Graph
    node_ids: tuple[int, ...]
    entry_ids: tuple[int, ...]
    exit_ids: tuple[int, ...]

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self.graph.node(i) for i in self.node_ids)

    @property
    def entries(self) -> tuple[Node, ...]:
        return tuple(self.graph.node(i) for i in self.entry_ids)

    @property
    def exits(self) -> tuple[Node, ...]:
        return tuple(self.graph.node(i) for i in self.exit_ids)

    def __len__(self) -> int:
        return len(self.node_ids)

    def __contains__(self, node: Node | int) -> bool:
        node_id = node.node_id if isinstance(node, Node) else int(node)
        return node_id in set(self.node_ids)

    @property
    def depth(self) -> int:
        """Longest operator chain within the subgraph (layers merged)."""
        members = set(self.node_ids)
        depth: dict[int, int] = {}
        for nid in self.node_ids:
            node = self.graph.node(nid)
            pred = [depth[i] for i in node.inputs if i in members]
            depth[nid] = 1 + (max(pred) if pred else 0)
        return max(depth.values(), default=0)

    def describe(self) -> str:
        names = [self.graph.node(i).name for i in self.node_ids]
        return f"SubgraphView({len(names)} nodes: {names[0]} .. {names[-1]})"


def materialize_subgraph(view: SubgraphView, name: str | None = None) -> Graph:
    """Lift a subgraph view into a standalone :class:`Graph`.

    Entry nodes become graph inputs; exits become outputs.  Used by the
    case-study benchmarks (Fig. 8/9) to execute one partition of a model in
    isolation under different strategies.
    """
    src = view.graph
    g = Graph(name or f"{src.name}/sub{view.node_ids[0]}")
    mapping: dict[int, Node] = {}
    for eid in view.entry_ids:
        mapping[eid] = g.input(src.node(eid).spec, name=f"in/{src.node(eid).name}")
    for nid in view.node_ids:
        node = src.node(nid)
        inputs = [mapping[i] for i in node.inputs]
        mapping[nid] = g.add(node.op, inputs, name=node.name)
    for xid in view.exit_ids:
        g.mark_output(mapping[xid])
    g.validate()
    return g


def subgraph_view(graph: Graph, node_ids: Iterable[int]) -> SubgraphView:
    """Build a :class:`SubgraphView`, validating dependency closure.

    ``node_ids`` must be closed under "all internal paths": any member's
    input is either a member or an entry.  Entries and exits are derived from
    the parent graph's edges.
    """
    members = sorted(set(int(i) for i in node_ids))
    if not members:
        raise GraphError("subgraph must contain at least one node")
    member_set = set(members)
    for nid in members:
        if not 0 <= nid < len(graph):
            raise GraphError(f"subgraph node id {nid} out of range")

    entry_ids: list[int] = []
    for nid in members:
        for i in graph.node(nid).inputs:
            if i not in member_set and i not in entry_ids:
                entry_ids.append(i)

    graph_outputs = {n.node_id for n in graph.output_nodes}
    exit_ids: list[int] = []
    for nid in members:
        consumed_outside = any(c not in member_set for c in graph.consumers(nid))
        if consumed_outside or nid in graph_outputs or not graph.consumers(nid):
            exit_ids.append(nid)

    return SubgraphView(
        graph=graph,
        node_ids=tuple(members),
        entry_ids=tuple(entry_ids),
        exit_ids=tuple(exit_ids),
    )
