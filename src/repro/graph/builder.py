"""Fluent construction API for DNN graphs.

:class:`GraphBuilder` wraps a :class:`~repro.graph.ir.Graph` with chainable
helpers for the operator vocabulary the model zoo needs, so model definitions
read like framework code::

    b = GraphBuilder("tiny", TensorSpec(1, 3, (32, 32)))
    x = b.conv(16, 3, padding=1, name="stem")
    x = b.relu()
    x = b.maxpool(2)
    b.classifier(10)

Helpers thread a "current" node so single-chain segments need no explicit
wiring; branching models pass nodes explicitly.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GraphError
from repro.graph.ir import Graph, Node
from repro.graph.ops import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv,
    ConvTranspose,
    Dense,
    Flatten,
    GlobalAvgPool,
    Pool,
    Softmax,
)
from repro.graph.tensorspec import TensorSpec

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Chainable builder over a :class:`Graph` with an implicit cursor."""

    def __init__(self, name: str, input_spec: TensorSpec, input_name: str = "input") -> None:
        self.graph = Graph(name)
        self._cursor: Node = self.graph.input(input_spec, name=input_name)
        self._ndim = input_spec.spatial_ndim

    @property
    def current(self) -> Node:
        """The most recently produced node (the implicit chain cursor)."""
        return self._cursor

    def at(self, node: Node) -> "GraphBuilder":
        """Move the cursor (for building branches)."""
        self._cursor = node
        return self

    def _src(self, src: Node | None) -> Node:
        return src if src is not None else self._cursor

    def _emit(self, op, inputs: Sequence[Node], name: str | None) -> Node:
        self._cursor = self.graph.add(op, inputs, name=name)
        return self._cursor

    # -- convolution family -------------------------------------------------
    def conv(self, out_channels: int, kernel: int | Sequence[int], stride: int | Sequence[int] = 1,
             padding: int | Sequence[int] | str = 0, dilation: int | Sequence[int] = 1,
             groups: int = 1, bias: bool = True, src: Node | None = None, name: str | None = None) -> Node:
        k = (kernel,) * self._ndim if isinstance(kernel, int) else tuple(kernel)
        if padding == "same":
            d = (dilation,) * self._ndim if isinstance(dilation, int) else tuple(dilation)
            padding = tuple(((kk - 1) * dd) // 2 for kk, dd in zip(k, d))
        op = Conv(out_channels=out_channels, kernel=k, stride=stride, padding=padding,
                  dilation=dilation, groups=groups, bias=bias)
        return self._emit(op, [self._src(src)], name)

    def deconv(self, out_channels: int, kernel: int | Sequence[int], stride: int | Sequence[int] = 1,
               padding: int | Sequence[int] = 0, bias: bool = True,
               src: Node | None = None, name: str | None = None) -> Node:
        k = (kernel,) * self._ndim if isinstance(kernel, int) else tuple(kernel)
        op = ConvTranspose(out_channels=out_channels, kernel=k, stride=stride, padding=padding, bias=bias)
        return self._emit(op, [self._src(src)], name)

    # -- pooling --------------------------------------------------------------
    def maxpool(self, kernel: int | Sequence[int], stride: int | Sequence[int] | None = None,
                padding: int | Sequence[int] = 0, src: Node | None = None, name: str | None = None) -> Node:
        k = (kernel,) * self._ndim if isinstance(kernel, int) else tuple(kernel)
        return self._emit(Pool(kernel=k, stride=stride, padding=padding, mode="max"), [self._src(src)], name)

    def avgpool(self, kernel: int | Sequence[int], stride: int | Sequence[int] | None = None,
                padding: int | Sequence[int] = 0, src: Node | None = None, name: str | None = None) -> Node:
        k = (kernel,) * self._ndim if isinstance(kernel, int) else tuple(kernel)
        return self._emit(Pool(kernel=k, stride=stride, padding=padding, mode="avg"), [self._src(src)], name)

    def global_avgpool(self, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(GlobalAvgPool(), [self._src(src)], name)

    # -- pointwise ------------------------------------------------------------
    def relu(self, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(Activation("relu"), [self._src(src)], name)

    def leaky_relu(self, slope: float = 0.1, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(Activation("leaky_relu", negative_slope=slope), [self._src(src)], name)

    def sigmoid(self, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(Activation("sigmoid"), [self._src(src)], name)

    def batchnorm(self, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(BatchNorm(), [self._src(src)], name)

    def add(self, a: Node, b: Node, name: str | None = None) -> Node:
        return self._emit(Add(), [a, b], name)

    def concat(self, branches: Sequence[Node], name: str | None = None) -> Node:
        if len(branches) < 2:
            raise GraphError("concat needs at least two branches")
        return self._emit(Concat(num_inputs=len(branches)), list(branches), name)

    def softmax(self, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(Softmax(), [self._src(src)], name)

    # -- heads ---------------------------------------------------------------
    def flatten(self, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(Flatten(), [self._src(src)], name)

    def dense(self, out_features: int, src: Node | None = None, name: str | None = None) -> Node:
        return self._emit(Dense(out_features=out_features), [self._src(src)], name)

    def classifier(self, num_classes: int, src: Node | None = None, prefix: str = "head") -> Node:
        """Standard global-pool -> flatten -> dense -> softmax head."""
        x = self.global_avgpool(src=src, name=f"{prefix}/gap")
        x = self.flatten(src=x, name=f"{prefix}/flatten")
        x = self.dense(num_classes, src=x, name=f"{prefix}/fc")
        x = self.softmax(src=x, name=f"{prefix}/softmax")
        self.graph.mark_output(x)
        return x

    # -- composites ------------------------------------------------------------
    def conv_bn_relu(self, out_channels: int, kernel: int | Sequence[int], stride: int | Sequence[int] = 1,
                     padding: int | Sequence[int] | str = "same", dilation: int | Sequence[int] = 1,
                     groups: int = 1, src: Node | None = None, prefix: str | None = None) -> Node:
        """The ubiquitous conv + batchnorm + relu block (bias folded by BN)."""
        prefix = prefix or f"cbr_{len(self.graph)}"
        x = self.conv(out_channels, kernel, stride=stride, padding=padding, dilation=dilation,
                      groups=groups, bias=False, src=src, name=f"{prefix}/conv")
        x = self.batchnorm(src=x, name=f"{prefix}/bn")
        return self.relu(src=x, name=f"{prefix}/relu")

    def finish(self, output: Node | None = None) -> Graph:
        """Mark the output (default: cursor), validate and return the graph."""
        self.graph.mark_output(output if output is not None else self._cursor)
        self.graph.validate()
        return self.graph
