"""Graph-rewriting passes for inference optimization.

The paper positions merged execution as *orthogonal* to conventional
graph-level optimizations ("Merged execution, when coupled with these
existing graph-level optimizations, can further optimize performance",
section 5.2).  This module supplies the conventional side so the claim is
exercisable in one system:

* :func:`fold_batchnorm` -- fold inference batch-norm (and standalone bias)
  into the preceding convolution's weights, the standard deployment rewrite
  (fewer pointwise sweeps for the baselines, fewer merged layers for
  BrickDL);
* :func:`eliminate_dead_nodes` -- drop nodes that cannot reach an output;
* :func:`eliminate_common_subexpressions` -- merge structurally identical
  nodes fed by the same inputs;
* :func:`optimize` -- the standard pipeline of the above.

All passes rebuild the graph (the IR is append-only) and preserve output
names, so optimized graphs remain drop-in replacements; numerical
equivalence is covered by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ir import Graph, Node
from repro.graph.ops import BatchNorm, Bias, Conv

__all__ = [
    "clone_weights",
    "fold_batchnorm",
    "eliminate_dead_nodes",
    "eliminate_common_subexpressions",
    "optimize",
    "rebatch_graph",
]


def clone_weights(node: Node) -> dict[str, np.ndarray]:
    """The audited weight clone every graph rebuild goes through.

    Returns a *fresh dict* holding the *same arrays*: the new graph can gain
    or replace entries (``load_graph`` restores, rules fold) without leaking
    into the source graph, while the arrays themselves stay shared -- weights
    are batch- and rewrite-independent, and sharing is what keeps rebuilt
    clones bit-identical to the source without re-initializing (and what the
    serving layer's batched clones rely on for memory).
    """
    return dict(node.weights)


def _rebuild(graph: Graph, skip: dict[int, int], name_suffix: str) -> Graph:
    """Rebuild ``graph`` redirecting consumers of ``skip``'s keys to their
    replacement ids (in old-graph numbering); skipped nodes are dropped."""
    out = Graph(f"{graph.name}")
    mapping: dict[int, Node] = {}

    def resolve(old_id: int) -> Node:
        while old_id in skip:
            old_id = skip[old_id]
        return mapping[old_id]

    for node in graph.nodes:
        if node.node_id in skip:
            continue
        if node.is_input:
            new = out.input(node.spec, name=node.name)
        else:
            inputs = [resolve(i) for i in node.inputs]
            new = out.add(node.op, inputs, name=node.name)
            new.weights = clone_weights(node)
        mapping[node.node_id] = new
    for o in graph.output_nodes:
        out.mark_output(resolve(o.node_id))
    out.validate()
    return out


def rebatch_graph(graph: Graph, batch: int) -> Graph:
    """Rebuild ``graph`` with every input's batch dimension set to ``batch``.

    The first production rule on the :mod:`repro.rewrite` interface: this
    wrapper keeps the historical call signature (engine ``for_batch``, the
    serving layer) while the match/apply logic and its proof obligations --
    interface preserved up to batch, weight arrays *shared* via
    :func:`clone_weights` so batched clones stay bit-identical to the
    single-shot graph -- live on :class:`repro.rewrite.rules.RebatchRule`.
    Returns ``graph`` itself when every input already has ``batch`` samples.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    from repro.rewrite.rules import RebatchRule

    rewrite = RebatchRule(batch).apply(graph)
    return graph if rewrite is None else rewrite.graph


def fold_batchnorm(graph: Graph) -> Graph:
    """Fold BatchNorm/Bias nodes into the preceding Conv.

    ``scale * (conv(x, W) + b) + shift`` becomes a conv with weights
    ``scale * W`` and bias ``scale * b + shift``.  Applies when the BN is
    the conv's sole consumer.  Weights must be initialized.
    """
    graph.init_weights()
    skip: dict[int, int] = {}
    folded_weights: dict[int, dict[str, np.ndarray]] = {}
    folded_bias_flag: set[int] = set()

    for node in graph.nodes:
        if not isinstance(node.op, (BatchNorm, Bias)):
            continue
        pred = graph.node(node.inputs[0])
        if not isinstance(pred.op, Conv):
            continue
        if graph.consumers(pred)!= (node.node_id,):
            continue
        if pred.node_id in skip:
            continue
        base = folded_weights.get(pred.node_id) or clone_weights(pred)
        w = base["weight"]
        b = base.get("bias")
        if b is None:
            b = np.zeros(w.shape[0], dtype=w.dtype)
        if isinstance(node.op, BatchNorm):
            scale = node.weights["scale"]
            shift = node.weights["shift"]
        else:
            scale = np.ones(w.shape[0], dtype=w.dtype)
            shift = node.weights["bias"]
        new_w = w * scale.reshape((-1,) + (1,) * (w.ndim - 1))
        new_b = scale * b + shift
        folded_weights[pred.node_id] = {"weight": new_w.astype(w.dtype), "bias": new_b.astype(w.dtype)}
        folded_bias_flag.add(pred.node_id)
        skip[node.node_id] = pred.node_id

    if not skip:
        return graph

    out = Graph(graph.name)
    mapping: dict[int, Node] = {}

    def resolve(old_id: int) -> Node:
        while old_id in skip:
            old_id = skip[old_id]
        return mapping[old_id]

    for node in graph.nodes:
        if node.node_id in skip:
            continue
        if node.is_input:
            mapping[node.node_id] = out.input(node.spec, name=node.name)
            continue
        op = node.op
        weights = clone_weights(node)
        if node.node_id in folded_weights:
            # The folded conv now carries a bias unconditionally.
            op = Conv(out_channels=op.out_channels, kernel=op.kernel, stride=op.stride,
                      padding=op.padding, dilation=op.dilation, groups=op.groups, bias=True)
            weights = folded_weights[node.node_id]
        inputs = [resolve(i) for i in node.inputs]
        new = out.add(op, inputs, name=node.name)
        new.weights = weights
        mapping[node.node_id] = new
    for o in graph.output_nodes:
        out.mark_output(resolve(o.node_id))
    out.validate()
    return out


def eliminate_dead_nodes(graph: Graph) -> Graph:
    """Drop nodes from which no graph output is reachable."""
    live: set[int] = set()
    stack = [n.node_id for n in graph.output_nodes]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.node(nid).inputs)
    dead = {n.node_id for n in graph.nodes if n.node_id not in live and not n.is_input}
    if not dead:
        return graph
    out = Graph(graph.name)
    mapping: dict[int, Node] = {}
    for node in graph.nodes:
        if node.node_id in dead:
            continue
        if node.is_input:
            mapping[node.node_id] = out.input(node.spec, name=node.name)
        else:
            new = out.add(node.op, [mapping[i] for i in node.inputs], name=node.name)
            new.weights = clone_weights(node)
            mapping[node.node_id] = new
    for o in graph.output_nodes:
        out.mark_output(mapping[o.node_id])
    out.validate()
    return out


def eliminate_common_subexpressions(graph: Graph) -> Graph:
    """Merge nodes with identical ops, inputs, and weights.

    Ops are frozen dataclasses, so structural equality is exact; weights are
    compared by array identity or value.  Output nodes keep their names.
    """
    graph.init_weights()
    seen: dict = {}
    skip: dict[int, int] = {}
    output_ids = {n.node_id for n in graph.output_nodes}
    for node in graph.nodes:
        if node.is_input or node.node_id in output_ids:
            continue
        resolved_inputs = tuple(skip.get(i, i) for i in node.inputs)
        key = (node.op, resolved_inputs)
        prior = seen.get(key)
        if prior is not None and _same_weights(graph.node(prior).weights, node.weights):
            skip[node.node_id] = prior
        else:
            seen[key] = node.node_id
    if not skip:
        return graph
    return _rebuild(graph, skip, "cse")


def _same_weights(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    if a.keys() != b.keys():
        return False
    return all(w is b[k] or np.array_equal(w, b[k]) for k, w in a.items())


def optimize(graph: Graph) -> Graph:
    """The standard inference pipeline: CSE -> BN folding -> dead-code."""
    g = eliminate_common_subexpressions(graph)
    g = fold_batchnorm(g)
    return eliminate_dead_nodes(g)
