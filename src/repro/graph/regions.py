"""Interval / region algebra for receptive fields and halos.

BrickDL's merged execution needs one central geometric fact per operator:
*which input region is required to produce a given output region?*  Section
3.2 of the paper states the contract -- an input block of size ``X_i`` along
dimension ``i`` yields an output block of size ``alpha_i * X_i + beta_i`` --
and section 3.2.1 derives the per-layer halo padding (``p_x = (X-1)/2`` for an
``X x Y`` kernel) by composing this map in reverse over a subgraph.

This module implements that algebra over half-open integer intervals:

* :class:`Interval` -- ``[lo, hi)`` with intersection/hull/shift helpers,
* :class:`Region` -- an n-dimensional box (one interval per spatial dim),
* receptive-field maps (:class:`StencilMap`, :class:`TransposedMap`,
  :class:`GlobalMap`) that answer ``required input interval for this output
  interval``, and
* :func:`compose_required` which folds a chain of maps in reverse order, the
  core of the static halo analysis (Fig. 4 of the paper).

Everything is exact integer arithmetic; boundary clipping against the actual
feature-map extent is performed by callers (executors materialize implicit
zero padding for out-of-range parts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ShapeError

__all__ = [
    "Interval",
    "Region",
    "RFMap",
    "StencilMap",
    "IdentityMap",
    "TransposedMap",
    "GlobalMap",
    "compose_required",
]


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open integer interval ``[lo, hi)``.

    Empty intervals (``hi <= lo``) are permitted and normalized by
    :meth:`is_empty`-aware operations; ``length`` of an empty interval is 0.
    """

    lo: int
    hi: int

    @property
    def length(self) -> int:
        return max(0, self.hi - self.lo)

    def is_empty(self) -> bool:
        return self.hi <= self.lo

    def shift(self, offset: int) -> "Interval":
        return Interval(self.lo + offset, self.hi + offset)

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (union hull)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def clip(self, extent: int) -> "Interval":
        """Intersect with the valid index range ``[0, extent)``."""
        return Interval(max(self.lo, 0), min(self.hi, extent))

    def contains(self, other: "Interval") -> bool:
        if other.is_empty():
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def contains_point(self, x: int) -> bool:
        return self.lo <= x < self.hi

    def expand(self, lo_by: int, hi_by: int) -> "Interval":
        return Interval(self.lo - lo_by, self.hi + hi_by)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi))


class Region(tuple):
    """An n-dimensional box: a tuple of :class:`Interval`, one per dim.

    ``Region`` subclasses ``tuple`` so it is hashable and iterates over its
    per-dimension intervals; all box operations are elementwise.
    """

    __slots__ = ()

    def __new__(cls, intervals: Iterable[Interval]) -> "Region":
        ivs = tuple(intervals)
        for iv in ivs:
            if iv.__class__ is not Interval and not isinstance(iv, Interval):
                raise TypeError(f"Region expects Interval elements, got {type(iv).__name__}")
        return super().__new__(cls, ivs)

    @classmethod
    def from_bounds(cls, los: Sequence[int], his: Sequence[int]) -> "Region":
        if len(los) != len(his):
            raise ShapeError("Region bounds must have equal rank")
        return cls(Interval(int(a), int(b)) for a, b in zip(los, his))

    @classmethod
    def from_extents(cls, extents: Sequence[int]) -> "Region":
        """The full box ``[0, e)`` in every dimension."""
        return cls(Interval(0, int(e)) for e in extents)

    @property
    def ndim(self) -> int:
        return len(self)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(iv.length for iv in self)

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    def is_empty(self) -> bool:
        return any(iv.is_empty() for iv in self)

    def intersect(self, other: "Region") -> "Region":
        self._check_rank(other)
        return Region(a.intersect(b) for a, b in zip(self, other))

    def hull(self, other: "Region") -> "Region":
        self._check_rank(other)
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Region(a.hull(b) for a, b in zip(self, other))

    def clip(self, extents: Sequence[int]) -> "Region":
        self._check_len(extents)
        return Region(iv.clip(int(e)) for iv, e in zip(self, extents))

    def shift(self, offsets: Sequence[int]) -> "Region":
        self._check_len(offsets)
        return Region(iv.shift(int(o)) for iv, o in zip(self, offsets))

    def contains(self, other: "Region") -> bool:
        self._check_rank(other)
        # An empty region is the empty set regardless of which dimension is
        # empty, so it is contained in everything (the per-interval check
        # alone would miss emptiness carried by a *different* dimension).
        if other.is_empty():
            return True
        return all(a.contains(b) for a, b in zip(self, other))

    def slices(self, origin: Sequence[int] | None = None) -> tuple[slice, ...]:
        """Numpy slices for this region, optionally relative to ``origin``."""
        if origin is None:
            origin = (0,) * self.ndim
        self._check_len(origin)
        return tuple(slice(iv.lo - int(o), iv.hi - int(o)) for iv, o in zip(self, origin))

    def _check_rank(self, other: "Region") -> None:
        if len(self) != len(other):
            raise ShapeError(f"Region rank mismatch: {len(self)} vs {len(other)}")

    def _check_len(self, seq: Sequence) -> None:
        if len(self) != len(seq):
            raise ShapeError(f"Region rank mismatch: {len(self)} vs {len(seq)}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"[{iv.lo},{iv.hi})" for iv in self)
        return f"Region({body})"


class RFMap:
    """Receptive-field map of one operator along one spatial dimension.

    Subclasses answer three questions used throughout the library:

    * :meth:`in_interval` -- the input interval required to produce a given
      output interval (the reverse map used by halo analysis and both merged
      executors),
    * :meth:`out_extent` -- forward shape inference along this dimension,
    * :meth:`alpha_beta` -- the paper's ``alpha * X + beta`` linear form for
      the *input* size required by an output block of size ``X`` (section
      3.2); operations without such a linear form (global ops) return None.
    """

    def in_interval(self, out: Interval) -> Interval:
        raise NotImplementedError

    def out_extent(self, in_extent: int) -> int:
        raise NotImplementedError

    def alpha_beta(self) -> tuple[int, int] | None:
        return None

    def halo_per_side(self) -> tuple[int, int]:
        """Extra input elements needed beyond an output-aligned window.

        Returns ``(lo_halo, hi_halo)`` for a unit-stride view of the map; used
        for reporting the paper's padding factors (``p_x = (k_eff - 1) / 2``
        for odd centered kernels).  Strided maps report the halo of the
        kernel footprint itself.
        """
        probe = self.in_interval(Interval(0, 1))
        return (max(0, -probe.lo), max(0, probe.hi - 1))

    def local_out_offset(self, out_lo: int, in_lo: int) -> int:
        """Where absolute output position ``out_lo`` lands in the local output
        of a padding-free kernel applied to a patch starting at absolute input
        position ``in_lo``.

        Executors gather a patch covering :meth:`in_interval` (possibly
        zero-filled beyond the feature map), run the padding-free kernel on
        it, and slice the result starting at this offset.
        """
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class StencilMap(RFMap):
    """Standard convolution/pooling-style map.

    For stride ``s``, symmetric zero padding ``p`` and *effective* kernel
    extent ``k_eff = (k - 1) * dilation + 1``, output interval ``[lo, hi)``
    requires input ``[lo*s - p, (hi-1)*s - p + k_eff)``.
    """

    stride: int = 1
    padding: int = 0
    k_eff: int = 1

    def __post_init__(self) -> None:
        if self.stride < 1 or self.k_eff < 1 or self.padding < 0:
            raise ShapeError(f"invalid StencilMap params: {self}")

    def in_interval(self, out: Interval) -> Interval:
        if out.is_empty():
            return Interval(0, 0)
        lo = out.lo * self.stride - self.padding
        hi = (out.hi - 1) * self.stride - self.padding + self.k_eff
        return Interval(lo, hi)

    def out_extent(self, in_extent: int) -> int:
        n = (in_extent + 2 * self.padding - self.k_eff) // self.stride + 1
        if n < 1:
            raise ShapeError(
                f"StencilMap produces empty output: in_extent={in_extent}, "
                f"k_eff={self.k_eff}, stride={self.stride}, padding={self.padding}"
            )
        return n

    def alpha_beta(self) -> tuple[int, int]:
        # input size for output block of size X: (X-1)*s + k_eff = s*X + (k_eff - s)
        return (self.stride, self.k_eff - self.stride)

    def halo_per_side(self) -> tuple[int, int]:
        # Halo beyond the stride-aligned window: (k_eff - 1) split by padding.
        return (self.padding, max(0, self.k_eff - 1 - self.padding))

    def local_out_offset(self, out_lo: int, in_lo: int) -> int:
        # Local output j of a padding-free stencil over a patch at absolute
        # position ``in_lo`` corresponds to absolute output (in_lo + p)/s + j
        # -- valid whenever the patch was produced by in_interval().
        numer = in_lo + self.padding
        if numer % self.stride:
            # Patch start not stride-aligned: callers must pass in_interval()
            # results, which are aligned by construction.
            raise ShapeError(
                f"patch start {in_lo} is not aligned for stride {self.stride} (padding {self.padding})"
            )
        return out_lo - numer // self.stride


class IdentityMap(StencilMap):
    """Elementwise map: output point i depends exactly on input point i."""

    def __init__(self) -> None:
        super().__init__(stride=1, padding=0, k_eff=1)


@dataclass(frozen=True, slots=True)
class TransposedMap(RFMap):
    """Transposed (fractionally strided) convolution map.

    Forward extent: ``out = (in - 1) * s + k - 2p + output_padding``.
    Output position ``o`` draws from input positions ``i`` with
    ``o = i*s + m - p`` for kernel tap ``m in [0, k)``, hence
    ``i in [ceil((o + p - k + 1)/s), floor((o + p)/s)]`` (positions in the
    output-padding tail may have no producers and are zero).
    """

    stride: int = 1
    padding: int = 0
    kernel: int = 1
    output_padding: int = 0

    def __post_init__(self) -> None:
        if self.stride < 1 or self.kernel < 1 or self.padding < 0 or self.output_padding < 0:
            raise ShapeError(f"invalid TransposedMap params: {self}")

    def in_interval(self, out: Interval) -> Interval:
        if out.is_empty():
            return Interval(0, 0)
        lo = math.ceil((out.lo + self.padding - self.kernel + 1) / self.stride)
        hi = math.floor((out.hi - 1 + self.padding) / self.stride) + 1
        return Interval(lo, hi)

    def out_extent(self, in_extent: int) -> int:
        n = (in_extent - 1) * self.stride + self.kernel - 2 * self.padding + self.output_padding
        if n < 1:
            raise ShapeError(f"TransposedMap produces empty output for extent {in_extent}")
        return n

    def alpha_beta(self) -> tuple[int, int] | None:
        # The exact input size is ceil-divided; report the conservative hull
        # linearization only for stride 1 where it is exact.
        if self.stride == 1:
            return (1, self.kernel - 1)
        return None

    def halo_per_side(self) -> tuple[int, int]:
        probe = self.in_interval(Interval(0, 1))
        return (max(0, -probe.lo), max(0, probe.hi - 1))

    def local_out_offset(self, out_lo: int, in_lo: int) -> int:
        # A padding-free transposed conv over a patch at absolute input
        # position ``in_lo`` produces local output j at absolute position
        # in_lo * s - p + j  (taps m in [0, k) land at i*s + m - p).
        return out_lo - (in_lo * self.stride - self.padding)


@dataclass(frozen=True, slots=True)
class GlobalMap(RFMap):
    """A map that requires the *entire* input extent (global pooling, softmax
    over the spatial dims, batch norm statistics in training -- anything that
    breaks the local ``alpha X + beta`` contract and therefore terminates a
    BrickDL subgraph, section 3.3.1)."""

    extent: int
    out_size: int = 1

    def in_interval(self, out: Interval) -> Interval:
        if out.is_empty():
            return Interval(0, 0)
        return Interval(0, self.extent)

    def out_extent(self, in_extent: int) -> int:
        if in_extent != self.extent:
            raise ShapeError(f"GlobalMap bound to extent {self.extent}, got {in_extent}")
        return self.out_size

    def alpha_beta(self) -> None:
        return None

    def halo_per_side(self) -> tuple[int, int]:
        return (self.extent, self.extent)


def compose_required(maps: Sequence[Sequence[RFMap]], out_region: Region) -> list[Region]:
    """Fold receptive-field maps of an operator chain in reverse.

    ``maps[l]`` holds one :class:`RFMap` per spatial dimension for layer ``l``
    of a chain (layer 0 consumes the chain input).  Given the ``out_region``
    produced by the *last* layer, returns a list of length ``len(maps) + 1``
    where entry ``l`` is the region of layer ``l``'s *input* activation that
    the chain touches; entry ``len(maps)`` is ``out_region`` itself.

    This is the queue-based reverse traversal of section 3.2.1: each step
    grows the region by that layer's halo, yielding the
    ``B + 2p, B + 4p, ...`` telescoping of Fig. 4.
    """

    regions: list[Region] = [out_region]
    current = out_region
    for layer_maps in reversed(maps):
        if len(layer_maps) != current.ndim:
            raise ShapeError(
                f"layer has {len(layer_maps)} dim maps but region rank is {current.ndim}"
            )
        current = Region(m.in_interval(iv) for m, iv in zip(layer_maps, current))
        regions.append(current)
    regions.reverse()
    return regions
