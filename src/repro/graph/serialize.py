"""Graph serialization: save/load models as JSON (+ optional weights NPZ).

A deployable inference library needs durable model artifacts.  Operator
specs are frozen dataclasses, so they serialize field-by-field; weights go
to a sidecar ``.npz`` (keyed ``<node name>/<weight name>``) so the JSON
stays human-readable and diff-able.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

from repro.errors import GraphError
from repro.graph import ops as ops_module
from repro.graph.ir import Graph
from repro.graph.ops import FusedOp, InputOp, OpSpec
from repro.graph.tensorspec import TensorSpec

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT_VERSION = 1


def _op_to_dict(op: OpSpec) -> dict:
    if isinstance(op, InputOp):
        return {"kind": "InputOp", "spec": _spec_to_dict(op.spec)}
    if isinstance(op, FusedOp):
        # Nested OpSpec fields need recursion, not the generic field walk.
        return {"kind": "FusedOp",
                "primary": _op_to_dict(op.primary),
                "epilogue": [_op_to_dict(s) for s in op.epilogue]}
    fields = {}
    for f in dataclasses.fields(op):
        v = getattr(op, f.name)
        fields[f.name] = list(v) if isinstance(v, tuple) else v
    return {"kind": type(op).__name__, **fields}


def _op_from_dict(d: dict) -> OpSpec:
    d = dict(d)
    kind = d.pop("kind")
    cls = getattr(ops_module, kind, None)
    if cls is None or not (isinstance(cls, type) and issubclass(cls, OpSpec)):
        raise GraphError(f"unknown operator kind {kind!r}")
    if cls is InputOp:
        return InputOp(_spec_from_dict(d["spec"]))
    if cls is FusedOp:
        return FusedOp(_op_from_dict(d["primary"]),
                       tuple(_op_from_dict(s) for s in d["epilogue"]))
    converted = {}
    for f in dataclasses.fields(cls):
        if f.name not in d:
            continue
        v = d[f.name]
        converted[f.name] = tuple(v) if isinstance(v, list) else v
    return cls(**converted)


def _spec_to_dict(spec: TensorSpec) -> dict:
    return {"batch": spec.batch, "channels": spec.channels,
            "spatial": list(spec.spatial), "dtype": spec.dtype.name}


def _spec_from_dict(d: dict) -> TensorSpec:
    return TensorSpec(d["batch"], d["channels"], tuple(d["spatial"]), np.dtype(d["dtype"]))


def graph_to_dict(graph: Graph) -> dict:
    """A JSON-serializable description of the graph's structure."""
    return {
        "format": _FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {"name": n.name, "op": _op_to_dict(n.op), "inputs": list(n.inputs)}
            for n in graph.nodes
        ],
        "outputs": [n.node_id for n in graph.output_nodes],
    }


def graph_from_dict(d: dict) -> Graph:
    if d.get("format") != _FORMAT_VERSION:
        raise GraphError(f"unsupported graph format {d.get('format')!r}")
    g = Graph(d["name"])
    for entry in d["nodes"]:
        op = _op_from_dict(entry["op"])
        if isinstance(op, InputOp):
            g.input(op.spec, name=entry["name"])
        else:
            g.add(op, entry["inputs"], name=entry["name"])
    for nid in d["outputs"]:
        g.mark_output(nid)
    g.validate()
    return g


def save_graph(graph: Graph, path: str | pathlib.Path, weights: bool = True) -> None:
    """Write ``<path>`` (JSON) and, if requested, ``<path>.npz`` weights."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(graph_to_dict(graph), indent=1))
    if weights:
        arrays = {
            f"{n.name}/{key}": w
            for n in graph.nodes for key, w in n.weights.items()
        }
        if arrays:
            np.savez(path.with_suffix(path.suffix + ".npz"), **arrays)


def load_graph(path: str | pathlib.Path) -> Graph:
    """Read a graph saved by :func:`save_graph` (weights restored if present)."""
    path = pathlib.Path(path)
    graph = graph_from_dict(json.loads(path.read_text()))
    npz = path.with_suffix(path.suffix + ".npz")
    if npz.exists():
        with np.load(npz) as data:
            for full_key in data.files:
                node_name, _, weight_key = full_key.rpartition("/")
                graph.node(node_name).weights[weight_key] = data[full_key]
    return graph
