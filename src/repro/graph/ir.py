"""DNN graph intermediate representation: :class:`Node` and :class:`Graph`.

A :class:`Graph` is a directed acyclic data-flow graph.  Each :class:`Node`
applies one :class:`~repro.graph.ops.OpSpec` to the outputs of its input
nodes and produces exactly one activation tensor.  Shapes are inferred at
construction time, so a fully built graph always shape-checks.

Graphs are the common currency of the whole library: the BrickDL engine,
the cuDNN-style baseline, the fusion passes and the model zoo all produce or
consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import GraphError, ShapeError
from repro.graph.ops import InputOp, OpSpec
from repro.graph.tensorspec import TensorSpec

__all__ = ["Node", "Graph"]


@dataclass
class Node:
    """One operator application in a :class:`Graph`.

    Attributes
    ----------
    node_id:
        Dense integer id, stable within its graph (also the topological
        insertion order).
    name:
        Human-readable unique name (e.g. ``"conv2_3/conv"``).
    op:
        The operator specification.
    inputs:
        Ids of producer nodes, in operator-argument order.
    spec:
        Inferred output tensor spec.
    weights:
        Materialized weight arrays (empty until ``Graph.init_weights``).
    """

    node_id: int
    name: str
    op: OpSpec
    inputs: tuple[int, ...]
    spec: TensorSpec
    weights: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def is_input(self) -> bool:
        return isinstance(self.op, InputOp)

    def __hash__(self) -> int:
        return hash((id(self), self.node_id))


class Graph:
    """A shape-checked DNN data-flow DAG.

    Nodes are appended via :meth:`add`; because inputs must already exist,
    node ids are always a valid topological order.  The graph tracks consumer
    lists so reverse traversals (BrickDL's static analysis) are O(V+E).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: list[Node] = []
        self._by_name: dict[str, Node] = {}
        self._consumers: list[list[int]] = []
        self._outputs: list[int] = []

    # -- construction -------------------------------------------------------
    def add(self, op: OpSpec, inputs: Sequence[Node | int] = (), name: str | None = None) -> Node:
        """Append a node applying ``op`` to ``inputs`` and infer its shape."""
        input_ids = tuple(n.node_id if isinstance(n, Node) else int(n) for n in inputs)
        for i in input_ids:
            if not 0 <= i < len(self._nodes):
                raise GraphError(f"input id {i} does not exist in graph {self.name!r}")
        input_specs = [self._nodes[i].spec for i in input_ids]
        try:
            spec = op.infer(input_specs)
        except ShapeError as exc:
            raise ShapeError(f"while adding {name or op.kind!r}: {exc}") from exc
        node_id = len(self._nodes)
        if name is None:
            name = f"{op.kind}_{node_id}"
        if name in self._by_name:
            raise GraphError(f"duplicate node name {name!r}")
        node = Node(node_id=node_id, name=name, op=op, inputs=input_ids, spec=spec)
        self._nodes.append(node)
        self._by_name[name] = node
        self._consumers.append([])
        for i in input_ids:
            self._consumers[i].append(node_id)
        return node

    def input(self, spec: TensorSpec, name: str = "input") -> Node:
        """Add a graph input placeholder."""
        return self.add(InputOp(spec), (), name=name)

    def mark_output(self, node: Node | int) -> None:
        node_id = node.node_id if isinstance(node, Node) else int(node)
        if node_id not in self._outputs:
            self._outputs.append(node_id)

    # -- access ---------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes)

    def node(self, ref: int | str) -> Node:
        if isinstance(ref, str):
            try:
                return self._by_name[ref]
            except KeyError:
                raise GraphError(f"no node named {ref!r}") from None
        return self._nodes[ref]

    def consumers(self, node: Node | int) -> tuple[int, ...]:
        node_id = node.node_id if isinstance(node, Node) else int(node)
        return tuple(self._consumers[node_id])

    @property
    def input_nodes(self) -> tuple[Node, ...]:
        return tuple(n for n in self._nodes if n.is_input)

    @property
    def output_nodes(self) -> tuple[Node, ...]:
        if self._outputs:
            return tuple(self._nodes[i] for i in self._outputs)
        # Default: all sinks.
        return tuple(n for n in self._nodes if not self._consumers[n.node_id])

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    # -- weights ---------------------------------------------------------------
    def init_weights(self, seed: int = 0) -> None:
        """Materialize deterministic weights for every node (idempotent)."""
        rng = np.random.default_rng(seed)
        for node in self._nodes:
            if not node.weights:
                input_specs = [self._nodes[i].spec for i in node.inputs]
                node.weights = node.op.init_weights(input_specs, rng)

    def weight_bytes(self) -> int:
        """Total parameter footprint in bytes (weights must be initialized)."""
        return sum(w.nbytes for n in self._nodes for w in n.weights.values())

    # -- analysis helpers --------------------------------------------------------
    def structural_errors(self) -> list[GraphError]:
        """Every structural failure as a typed :class:`GraphError`.

        Each error message names the offending node (and edge, where one is
        involved).  ``validate`` raises the first; the graph linter
        (:mod:`repro.analysis.graph_lint`) reports them all -- both consume
        this single implementation so the checks cannot drift apart.
        """
        errors: list[GraphError] = []
        for index, node in enumerate(self._nodes):
            if node.node_id != index:
                errors.append(GraphError(
                    f"node {node.name!r}: node_id {node.node_id} does not match "
                    f"its position {index} in the graph"))
            if len(node.inputs) != node.op.arity:
                errors.append(GraphError(
                    f"node {node.name!r}: op {node.op.kind} expects {node.op.arity} "
                    f"inputs, has {len(node.inputs)}"))
            for i in node.inputs:
                if not 0 <= i < len(self._nodes):
                    errors.append(GraphError(
                        f"node {node.name!r}: dangling edge to nonexistent node id {i}"))
                elif i >= node.node_id:
                    errors.append(GraphError(
                        f"node {node.name!r}: edge {i} -> {node.node_id} violates "
                        f"topological order (consumes node {self._nodes[i].name!r} "
                        f"added later)"))
            if self._by_name.get(node.name) is not node:
                errors.append(GraphError(
                    f"node {node.name!r}: name resolves to a different node "
                    f"(duplicate or stale name index)"))
        # Consumer bookkeeping must mirror the edge list exactly.
        expected: list[list[int]] = [[] for _ in self._nodes]
        for node in self._nodes:
            for i in node.inputs:
                if 0 <= i < len(self._nodes):
                    expected[i].append(node.node_id)
        for node in self._nodes:
            if sorted(self._consumers[node.node_id]) != sorted(expected[node.node_id]):
                errors.append(GraphError(
                    f"node {node.name!r}: consumer list {self._consumers[node.node_id]} "
                    f"disagrees with the edges ({expected[node.node_id]})"))
        bad_outputs = [oid for oid in self._outputs if not 0 <= oid < len(self._nodes)]
        for oid in bad_outputs:
            errors.append(GraphError(
                f"graph {self.name!r}: marked output id {oid} does not exist"))
        if not self.input_nodes:
            errors.append(GraphError(f"graph {self.name!r} has no input nodes"))
        if not bad_outputs and not self.output_nodes:
            errors.append(GraphError(f"graph {self.name!r} has no output nodes"))
        return errors

    def validate(self) -> None:
        """Structural sanity checks; raises the first :class:`GraphError`."""
        errors = self.structural_errors()
        if errors:
            raise errors[0]

    def activation_bytes(self) -> int:
        """Sum of all activation sizes (one pass, no reuse)."""
        return sum(n.spec.nbytes for n in self._nodes)

    def total_flops(self) -> int:
        total = 0
        for node in self._nodes:
            input_specs = [self._nodes[i].spec for i in node.inputs]
            total += node.op.flops(input_specs, node.spec.num_elements)
        return total

    def summary(self) -> str:
        """A readable multi-line description of the graph."""
        lines = [f"Graph {self.name!r}: {len(self)} nodes"]
        for node in self._nodes:
            ins = ",".join(str(i) for i in node.inputs)
            lines.append(f"  [{node.node_id:3d}] {node.name:<28s} {node.op.kind:<14s} <- ({ins}) -> {node.spec}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Graph({self.name!r}, nodes={len(self)})"
