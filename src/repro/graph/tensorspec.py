"""Tensor shape/dtype specifications for DNN activations.

Activations follow the channels-first convention used by cuDNN and the paper:
``(N, C, *spatial)`` where ``spatial`` is ``(H, W)`` for 2-D networks and
``(D, H, W)`` for 3-D networks.  BrickDL blocks along the batch and spatial
dimensions only (section 3.2), so :class:`TensorSpec` exposes those groups
separately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError

__all__ = ["TensorSpec"]


@dataclass(frozen=True)
class TensorSpec:
    """Shape and dtype of one activation tensor.

    Parameters
    ----------
    batch:
        Sample dimension ``N``.
    channels:
        Channel dimension ``C`` (never blocked by BrickDL).
    spatial:
        Spatial extents, ``(H, W)`` or ``(D, H, W)`` (or ``(L,)`` for 1-D).
        May be empty for fully-connected activations.
    dtype:
        NumPy dtype; the paper's kernels are single precision throughout.
    """

    batch: int
    channels: int
    spatial: tuple[int, ...] = ()
    dtype: np.dtype = field(default=np.dtype(np.float32))

    def __post_init__(self) -> None:
        object.__setattr__(self, "spatial", tuple(int(s) for s in self.spatial))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.batch < 1 or self.channels < 1:
            raise ShapeError(f"batch and channels must be positive: {self}")
        if any(s < 1 for s in self.spatial):
            raise ShapeError(f"spatial extents must be positive: {self}")

    @property
    def shape(self) -> tuple[int, ...]:
        """Full NumPy shape ``(N, C, *spatial)``."""
        return (self.batch, self.channels, *self.spatial)

    @property
    def spatial_ndim(self) -> int:
        return len(self.spatial)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def num_elements(self) -> int:
        return self.batch * self.channels * math.prod(self.spatial) if self.spatial else self.batch * self.channels

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.itemsize

    def with_channels(self, channels: int) -> "TensorSpec":
        return TensorSpec(self.batch, channels, self.spatial, self.dtype)

    def with_spatial(self, spatial: tuple[int, ...]) -> "TensorSpec":
        return TensorSpec(self.batch, self.channels, tuple(spatial), self.dtype)

    def zeros(self) -> np.ndarray:
        """Allocate a zero activation with this spec (C-contiguous)."""
        return np.zeros(self.shape, dtype=self.dtype)

    def random(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Allocate a deterministic-friendly random activation."""
        rng = rng if rng is not None else np.random.default_rng(0)
        return rng.standard_normal(self.shape).astype(self.dtype)

    def __str__(self) -> str:
        sp = "x".join(str(s) for s in self.spatial) if self.spatial else "-"
        return f"TensorSpec(N={self.batch}, C={self.channels}, spatial={sp}, {self.dtype.name})"
