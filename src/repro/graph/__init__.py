"""DNN graph intermediate representation substrate.

This subpackage provides everything needed to describe a DNN inference
computation as a data-flow DAG:

* :mod:`repro.graph.tensorspec` -- shapes and dtypes of activations,
* :mod:`repro.graph.regions` -- interval algebra for receptive fields / halos,
* :mod:`repro.graph.ops` -- operator specifications (conv, pool, ...),
* :mod:`repro.graph.ir` -- the :class:`Graph` / :class:`Node` DAG itself,
* :mod:`repro.graph.builder` -- a fluent construction API,
* :mod:`repro.graph.traversal` -- topological / reverse traversals and
  subgraph views used by the BrickDL partitioner.
"""

from repro.graph.tensorspec import TensorSpec
from repro.graph.regions import Interval, Region, StencilMap, IdentityMap, TransposedMap, GlobalMap, compose_required
from repro.graph.ir import Graph, Node
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import topological_order, reverse_order, subgraph_view

__all__ = [
    "TensorSpec",
    "Interval",
    "Region",
    "StencilMap",
    "IdentityMap",
    "TransposedMap",
    "GlobalMap",
    "compose_required",
    "Graph",
    "Node",
    "GraphBuilder",
    "topological_order",
    "reverse_order",
    "subgraph_view",
]
