"""Transposed ("de-") convolution kernels.

Implemented as the textbook equivalence: zero-stuff the input by the stride,
then run a regular convolution with the spatially flipped kernel and *full*
padding, finally cropping the user padding.  This routes all the heavy
lifting through :func:`repro.kernels.conv.conv_forward`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.kernels.conv import conv_forward

__all__ = ["conv_transpose_forward", "conv_transpose_full"]


def _stuff(x: np.ndarray, stride: tuple[int, ...]) -> np.ndarray:
    """Insert ``s - 1`` zeros between input samples along each spatial dim."""
    if all(s == 1 for s in stride):
        return x
    n, c = x.shape[:2]
    spatial = x.shape[2:]
    stuffed_shape = tuple((e - 1) * s + 1 for e, s in zip(spatial, stride))
    out = np.zeros((n, c) + stuffed_shape, dtype=x.dtype)
    idx = (slice(None), slice(None)) + tuple(slice(None, None, s) for s in stride)
    out[idx] = x
    return out


def _flipped_weight(weight: np.ndarray) -> np.ndarray:
    """``(C_in, C_out, *K)`` -> ``(C_out, C_in, *K_flipped)``."""
    nd = weight.ndim - 2
    w = np.swapaxes(weight, 0, 1)
    flip = (slice(None), slice(None)) + (slice(None, None, -1),) * nd
    return np.ascontiguousarray(w[flip])


def conv_transpose_full(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: Sequence[int] | int = 1,
) -> np.ndarray:
    """Padding-free transposed conv: output extent ``(S-1)*stride + K``.

    This is the primitive the brick executors use -- they handle padding and
    cropping themselves via the region algebra.
    """
    nd = weight.ndim - 2
    stride = (stride,) * nd if isinstance(stride, int) else tuple(stride)
    if x.ndim != 2 + nd:
        raise ShapeError(f"conv_transpose expects (N, C, *S), got {x.shape}")
    if x.shape[1] != weight.shape[0]:
        raise ShapeError(f"conv_transpose channels mismatch: {x.shape[1]} vs {weight.shape[0]}")
    kernel = weight.shape[2:]
    stuffed = _stuff(x, stride)
    full_pad = tuple(k - 1 for k in kernel)
    return conv_forward(stuffed, _flipped_weight(weight), bias, stride=1, padding=full_pad)


def conv_transpose_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: Sequence[int] | int = 1,
    padding: Sequence[int] | int = 0,
    output_padding: Sequence[int] | int = 0,
) -> np.ndarray:
    """User-facing transposed conv:
    ``out = (S-1)*stride + K - 2*padding + output_padding``.

    ``output_padding`` extends the output tail with positions that may have
    no producers (zeros) -- the standard device for inverting strided convs
    whose forward extent was floor-divided.
    """
    nd = weight.ndim - 2
    padding = (padding,) * nd if isinstance(padding, int) else tuple(padding)
    output_padding = ((output_padding,) * nd if isinstance(output_padding, int)
                      else tuple(output_padding))
    full = conv_transpose_full(x, weight, bias, stride)
    if not any(padding) and not any(output_padding):
        return full
    outs = [e - 2 * p + op for e, p, op in zip(full.shape[2:], padding, output_padding)]
    pad_tail = [max(0, p + out - e) for p, out, e in zip(padding, outs, full.shape[2:])]
    if any(pad_tail):
        full = np.pad(full, [(0, 0), (0, 0)] + [(0, t) for t in pad_tail])
    crop = (slice(None), slice(None)) + tuple(
        slice(p, p + out) for p, out in zip(padding, outs)
    )
    return np.ascontiguousarray(full[crop])
