"""N-dimensional convolution kernels (2-D and 3-D, strided/dilated/grouped).

The forward pass builds a strided window view and contracts it with the
weight tensor via a single ``einsum`` -- one fused multiply-accumulate sweep,
no Python loops, matching the im2col+GEMM structure of cuDNN's implicit-GEMM
algorithms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.kernels.windows import KERNEL_LETTERS, SPATIAL_LETTERS, pad_spatial, spatial_windows

__all__ = ["conv_forward"]


def conv_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: Sequence[int] | int = 1,
    padding: Sequence[int] | int = 0,
    dilation: Sequence[int] | int = 1,
    groups: int = 1,
) -> np.ndarray:
    """Convolve ``x (N, C, *S)`` with ``weight (O, C/groups, *K)``.

    Symmetric zero padding; returns a C-contiguous ``(N, O, *S_out)`` array
    in ``x``'s dtype.
    """
    nd = weight.ndim - 2
    kernel = weight.shape[2:]
    stride = (stride,) * nd if isinstance(stride, int) else tuple(stride)
    padding = (padding,) * nd if isinstance(padding, int) else tuple(padding)
    dilation = (dilation,) * nd if isinstance(dilation, int) else tuple(dilation)
    if x.ndim != 2 + nd:
        raise ShapeError(f"conv{nd}d expects (N, C, *S) input, got shape {x.shape}")

    n, c = x.shape[:2]
    o, c_per_group = weight.shape[:2]
    if c != c_per_group * groups:
        raise ShapeError(f"conv channels mismatch: input C={c}, weight expects {c_per_group * groups}")
    if o % groups:
        raise ShapeError(f"out channels {o} not divisible by groups {groups}")

    xp = pad_spatial(x, padding)
    v = spatial_windows(xp, kernel, stride, dilation)  # (N, C, *out, *K)

    sp = SPATIAL_LETTERS[:nd]
    kl = KERNEL_LETTERS[:nd]
    if groups == 1:
        out = np.einsum(f"nc{sp}{kl},oc{kl}->no{sp}", v, weight, optimize=True)
    else:
        out_spatial = v.shape[2 : 2 + nd]
        vg = v.reshape(n, groups, c_per_group, *out_spatial, *kernel)
        wg = weight.reshape(groups, o // groups, c_per_group, *kernel)
        og = np.einsum(f"ngc{sp}{kl},goc{kl}->ngo{sp}", vg, wg, optimize=True)
        out = og.reshape(n, o, *out_spatial)

    out = np.ascontiguousarray(out, dtype=x.dtype)
    if bias is not None:
        out += bias.reshape((1, -1) + (1,) * nd).astype(x.dtype)
    return out
