"""NumPy reference kernels -- the library's cuDNN substitute.

BrickDL invokes vendor kernels at brick granularity (section 3.3.4); this
reproduction invokes these NumPy kernels instead.  They are written with the
vectorization idioms of the HPC-Python guides (stride-trick window views, no
Python-level loops over elements, contiguous outputs) and serve as the
numerical ground truth: merged brick execution must reproduce their results
exactly.

:mod:`repro.kernels.dispatch` is the entry point used by all executors.
"""

from repro.kernels.dispatch import apply_node_full, apply_node_local, pad_value_for

__all__ = ["apply_node_full", "apply_node_local", "pad_value_for"]
