"""Sliding-window helpers shared by the convolution and pooling kernels.

These build strided *views* (no copies, per the optimization guides) over the
spatial dimensions of an ``(N, C, *spatial)`` activation, with stride and
dilation applied by slicing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ShapeError

__all__ = ["spatial_windows", "pad_spatial", "SPATIAL_LETTERS", "KERNEL_LETTERS"]

SPATIAL_LETTERS = "xyz"
KERNEL_LETTERS = "uvw"


def pad_spatial(x: np.ndarray, padding: Sequence[int], value: float = 0.0) -> np.ndarray:
    """Symmetrically pad the spatial dims of an ``(N, C, *spatial)`` array."""
    if not any(padding):
        return x
    widths = [(0, 0), (0, 0)] + [(int(p), int(p)) for p in padding]
    return np.pad(x, widths, mode="constant", constant_values=value)


def spatial_windows(
    x: np.ndarray,
    kernel: Sequence[int],
    stride: Sequence[int],
    dilation: Sequence[int],
) -> np.ndarray:
    """A view of shape ``(N, C, *out_spatial, *kernel)``.

    ``x`` must already include any padding.  Stride is applied by slicing the
    output-position axes; dilation by slicing the window axes.
    """
    nd = len(kernel)
    if x.ndim != 2 + nd:
        raise ShapeError(f"expected (N, C, *spatial) with {nd} spatial dims, got shape {x.shape}")
    k_eff = tuple((k - 1) * d + 1 for k, d in zip(kernel, dilation))
    for e, ke in zip(x.shape[2:], k_eff):
        if e < ke:
            raise ShapeError(f"window {k_eff} does not fit spatial extent {x.shape[2:]}")
    v = sliding_window_view(x, k_eff, axis=tuple(range(2, 2 + nd)))
    out_slices = tuple(slice(None, None, int(s)) for s in stride)
    win_slices = tuple(slice(None, None, int(d)) for d in dilation)
    return v[(slice(None), slice(None)) + out_slices + win_slices]
