"""Pointwise kernels: activations, inference batch-norm, bias, elementwise.

All of these are the memory-bound operators the paper's operator-fusion
baselines fuse onto convolutions; in BrickDL they ride along inside merged
subgraphs for free (padding factor 0, section 3.2.1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "activation",
    "batchnorm_inference",
    "add_bias",
    "elementwise_add",
    "elementwise_mul",
    "channel_softmax",
]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0, dtype=x.dtype)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.1) -> np.ndarray:
    return np.where(x >= 0, x, x * x.dtype.type(negative_slope))


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable split form.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x, dtype=x.dtype)


_ACTIVATIONS = {"relu": relu, "leaky_relu": leaky_relu, "sigmoid": sigmoid, "tanh": tanh}


def activation(x: np.ndarray, fn: str, negative_slope: float = 0.1) -> np.ndarray:
    if fn == "leaky_relu":
        return leaky_relu(x, negative_slope)
    return _ACTIVATIONS[fn](x)


def _per_channel(vec: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape a per-channel vector for broadcasting over (N, C, *spatial)."""
    return vec.reshape((1, -1) + (1,) * (ndim - 2))


def batchnorm_inference(x: np.ndarray, scale: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Folded inference BN: ``scale * x + shift`` per channel."""
    return (x * _per_channel(scale, x.ndim) + _per_channel(shift, x.ndim)).astype(x.dtype)


def add_bias(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    return (x + _per_channel(bias, x.ndim)).astype(x.dtype)


def elementwise_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a + b).astype(a.dtype)


def elementwise_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a * b).astype(a.dtype)


def channel_softmax(x: np.ndarray) -> np.ndarray:
    """Softmax over the channel axis (axis 1), numerically stabilized."""
    shifted = x - x.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return (e / e.sum(axis=1, keepdims=True)).astype(x.dtype)
