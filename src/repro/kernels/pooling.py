"""Max / average pooling kernels (any spatial rank).

Max pooling pads with ``-inf`` (padding never wins a max); average pooling
uses count-include-pad semantics (zeros contribute to the mean), which keeps
full-tensor and brick-local execution bit-identical.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.kernels.windows import pad_spatial, spatial_windows

__all__ = ["pool_forward", "global_avg_pool"]


def pool_forward(
    x: np.ndarray,
    kernel: Sequence[int],
    stride: Sequence[int] | None = None,
    padding: Sequence[int] | int = 0,
    mode: str = "max",
) -> np.ndarray:
    """Pool ``x (N, C, *S)`` over spatial windows."""
    kernel = tuple(kernel)
    nd = len(kernel)
    if stride is None:
        stride = kernel
    elif isinstance(stride, int):
        stride = (stride,) * nd
    else:
        stride = tuple(stride)
    padding = (padding,) * nd if isinstance(padding, int) else tuple(padding)

    fill = -np.inf if mode == "max" else 0.0
    xp = pad_spatial(x, padding, value=fill)
    v = spatial_windows(xp, kernel, stride, dilation=(1,) * nd)
    window_axes = tuple(range(2 + nd, 2 + 2 * nd))
    if mode == "max":
        out = v.max(axis=window_axes)
    else:
        out = v.sum(axis=window_axes) / math.prod(kernel)
    return np.ascontiguousarray(out, dtype=x.dtype)


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Collapse all spatial dims to size 1 by averaging."""
    nd = x.ndim - 2
    axes = tuple(range(2, 2 + nd))
    out = x.mean(axis=axes, keepdims=True)
    return np.ascontiguousarray(out, dtype=x.dtype)
