"""Fully-connected layer kernels for classifier heads."""

from __future__ import annotations

import numpy as np

__all__ = ["dense_forward", "flatten_forward"]


def flatten_forward(x: np.ndarray) -> np.ndarray:
    """Collapse everything after the batch axis into one feature axis."""
    return np.ascontiguousarray(x.reshape(x.shape[0], -1))


def dense_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``y = x @ W.T + b`` with ``x (N, F_in)`` and ``W (F_out, F_in)``.

    Rows are pushed through the GEMM one at a time: BLAS picks
    shape-dependent kernels, so a batched ``(N, K) @ (K, M)`` is not
    bit-identical to the same rows multiplied individually.  The serving
    layer coalesces requests into batches and promises outputs identical to
    the single-shot path, so every row must take the batch-1 code path
    regardless of how many rides along with it.
    """
    if x.shape[0] == 1:
        out = x @ weight.T
    else:
        out = np.concatenate([x[i:i + 1] @ weight.T for i in range(x.shape[0])], axis=0)
    if bias is not None:
        out = out + bias
    return np.ascontiguousarray(out, dtype=x.dtype)
