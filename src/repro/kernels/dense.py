"""Fully-connected layer kernels for classifier heads."""

from __future__ import annotations

import numpy as np

__all__ = ["dense_forward", "flatten_forward"]


def flatten_forward(x: np.ndarray) -> np.ndarray:
    """Collapse everything after the batch axis into one feature axis."""
    return np.ascontiguousarray(x.reshape(x.shape[0], -1))


def dense_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``y = x @ W.T + b`` with ``x (N, F_in)`` and ``W (F_out, F_in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return np.ascontiguousarray(out, dtype=x.dtype)
