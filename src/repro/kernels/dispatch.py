"""Operator -> kernel dispatch, in full-tensor and brick-local flavors.

Two entry points:

* :func:`apply_node_full` -- execute an op on complete activations.  Used by
  the naive reference executor, the tiled cuDNN-style baseline (per tile, via
  the local path) and for the global ops (dense heads, global pooling) that
  BrickDL hands off to the vendor library (section 3.3.3).

* :func:`apply_node_local` -- execute an op on a *patch*: the caller has
  gathered exactly the input region reported by the op's receptive-field
  maps (zero/neutral-filled beyond the feature map) and wants the outputs for
  its target region.  This is the primitive both merged-execution strategies
  call per brick, mirroring BrickDL's fine-grained cuDNN invocations.

The local path never applies feature-map padding itself: implicit zeros are
already materialized in the patch.  Transposed convolutions over-produce and
are sliced using the ``local_out_offset`` of their receptive-field map.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import UnsupportedOpError
from repro.graph.ops import (
    Activation,
    Add,
    Mul,
    BatchNorm,
    Bias,
    Concat,
    Conv,
    ConvTranspose,
    Dense,
    Flatten,
    FusedOp,
    GlobalAvgPool,
    InputOp,
    OpSpec,
    Pool,
    Softmax,
)
from repro.kernels.conv import conv_forward
from repro.kernels.conv_transpose import conv_transpose_forward, conv_transpose_full
from repro.kernels.dense import dense_forward, flatten_forward
from repro.kernels.pointwise import (
    activation,
    add_bias,
    batchnorm_inference,
    channel_softmax,
    elementwise_add,
    elementwise_mul,
)
from repro.kernels.pooling import global_avg_pool, pool_forward

__all__ = ["apply_node_full", "apply_node_local", "pad_value_for"]


def pad_value_for(op: OpSpec) -> float:
    """Neutral fill value for out-of-feature-map patch elements."""
    if isinstance(op, FusedOp):
        op = op.primary  # the primary reads the patch; epilogues are pointwise
    if isinstance(op, Pool) and op.mode == "max":
        return -np.inf
    return 0.0


def apply_node_full(op: OpSpec, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> np.ndarray:
    """Execute ``op`` on full activations (feature-map padding applied)."""
    if isinstance(op, InputOp):
        return inputs[0] if inputs else op.spec.zeros()
    if isinstance(op, FusedOp):
        # Run the exact same kernels, in the same order, as the unfused
        # nodes would: fusion rewrites stay bit-identical by construction.
        per_stage = op.split_weights(weights)
        out = apply_node_full(op.primary, inputs, per_stage[0])
        for stage, sw in zip(op.epilogue, per_stage[1:]):
            out = apply_node_full(stage, [out], sw)
        return out
    if isinstance(op, Conv):
        return conv_forward(
            inputs[0], weights["weight"], weights.get("bias"),
            stride=op.stride, padding=op.padding, dilation=op.dilation, groups=op.groups,
        )
    if isinstance(op, ConvTranspose):
        return conv_transpose_forward(
            inputs[0], weights["weight"], weights.get("bias"), stride=op.stride,
            padding=op.padding, output_padding=op.output_padding,
        )
    if isinstance(op, Pool):
        return pool_forward(inputs[0], op.kernel, op.stride, op.padding, op.mode)
    if isinstance(op, GlobalAvgPool):
        return global_avg_pool(inputs[0])
    if isinstance(op, Activation):
        return activation(inputs[0], op.fn, op.negative_slope)
    if isinstance(op, BatchNorm):
        return batchnorm_inference(inputs[0], weights["scale"], weights["shift"])
    if isinstance(op, Bias):
        return add_bias(inputs[0], weights["bias"])
    if isinstance(op, Add):
        return elementwise_add(inputs[0], inputs[1])
    if isinstance(op, Mul):
        return elementwise_mul(inputs[0], inputs[1])
    if isinstance(op, Concat):
        return np.ascontiguousarray(np.concatenate(list(inputs), axis=1))
    if isinstance(op, Flatten):
        return flatten_forward(inputs[0])
    if isinstance(op, Dense):
        return dense_forward(inputs[0], weights["weight"], weights.get("bias"))
    if isinstance(op, Softmax):
        return channel_softmax(inputs[0])
    raise UnsupportedOpError(f"no full kernel for op {op!r}")


def _per_input_offsets(
    offsets: Sequence, num_inputs: int, ndim: int
) -> list[tuple[int, ...]]:
    """Normalize ``offsets`` to one per-dim tuple per input.

    Accepts either a single per-dim tuple (applied to every input -- the
    historical calling convention) or a sequence of per-input tuples.
    """
    offsets = tuple(offsets)
    if offsets and isinstance(offsets[0], (tuple, list)):
        per_input = [tuple(int(v) for v in o) for o in offsets]
        if len(per_input) != num_inputs:
            raise UnsupportedOpError(
                f"got offsets for {len(per_input)} inputs, op has {num_inputs}"
            )
        return per_input
    one = tuple(int(v) for v in offsets) if offsets else (0,) * ndim
    return [one] * num_inputs


def _align(patch: np.ndarray, offsets: tuple[int, ...], out_spatial: tuple[int, ...]) -> np.ndarray:
    """Crop an elementwise input patch to its aligned output window."""
    if patch.shape[1:] == tuple(out_spatial) and not any(offsets):
        return patch
    crop = (slice(None),) + tuple(slice(o, o + e) for o, e in zip(offsets, out_spatial))
    return np.ascontiguousarray(patch[crop])


def apply_node_local(
    op: OpSpec,
    patches: Sequence[np.ndarray],
    weights: dict[str, np.ndarray],
    out_spatial: tuple[int, ...],
    offsets: Sequence,
) -> np.ndarray:
    """Execute ``op`` on gathered patches for one output region.

    Parameters
    ----------
    patches:
        One ``(C, *patch_spatial)`` array per op input (a single batch
        sample -- bricks belong to one sample), covering exactly the region
        the op's :meth:`rf_maps` report for the target output region
        (neutral-filled outside the feature map).
    out_spatial:
        Spatial shape of the requested output region.
    offsets:
        Offsets (from ``RFMap.local_out_offset``) at which the requested
        region starts inside the kernel's local output: either one per-dim
        tuple applied to every input, or a sequence with one per-dim tuple
        *per input* (required when inputs have differing receptive-field
        offsets, e.g. a two-input op whose inputs carry different halos).
        Zero for all stencil ops; positive for transposed convolutions.
    """
    ndim = len(out_spatial)
    if isinstance(op, FusedOp):
        # The primary consumes the gathered patches (its rf_maps sized them);
        # pointwise epilogue stages then run on its cropped local output.
        per_stage = op.split_weights(weights)
        local = apply_node_local(op.primary, patches, per_stage[0], out_spatial, offsets)
        zero = (0,) * ndim
        for stage, sw in zip(op.epilogue, per_stage[1:]):
            local = apply_node_local(stage, [local], sw, out_spatial, zero)
        return local
    per_input = _per_input_offsets(offsets, len(patches), ndim)
    patches = [p[None] for p in patches]  # kernels expect a batch axis
    # Multi-input ops combine elementwise: each patch is positioned by its
    # *own* receptive-field map, so align every input to the requested output
    # window before combining (inputs may carry different halos).
    if isinstance(op, (Add, Mul, Concat)):
        aligned = [
            _align(p[0], off, out_spatial)[None]
            for p, off in zip(patches, per_input)
        ]
        if isinstance(op, Add):
            return elementwise_add(aligned[0], aligned[1])[0]
        if isinstance(op, Mul):
            return elementwise_mul(aligned[0], aligned[1])[0]
        return np.ascontiguousarray(np.concatenate(list(aligned), axis=1))[0]

    offsets = per_input[0]
    if isinstance(op, Conv):
        local = conv_forward(
            patches[0], weights["weight"], weights.get("bias"),
            stride=op.stride, padding=0, dilation=op.dilation, groups=op.groups,
        )
    elif isinstance(op, ConvTranspose):
        local = conv_transpose_full(patches[0], weights["weight"], weights.get("bias"), stride=op.stride)
    elif isinstance(op, Pool):
        local = pool_forward(patches[0], op.kernel, op.stride, padding=0, mode=op.mode)
    elif isinstance(op, Activation):
        local = activation(patches[0], op.fn, op.negative_slope)
    elif isinstance(op, BatchNorm):
        local = batchnorm_inference(patches[0], weights["scale"], weights["shift"])
    elif isinstance(op, Bias):
        local = add_bias(patches[0], weights["bias"])
    elif isinstance(op, Softmax):
        local = channel_softmax(patches[0])
    else:
        raise UnsupportedOpError(f"op {op.kind!r} is not brick-local (global ops run un-bricked)")

    local = local[0]  # drop the batch axis again
    if local.shape[1:] == tuple(out_spatial) and not any(offsets):
        return local
    crop = (slice(None),) + tuple(
        slice(o, o + e) for o, e in zip(offsets, out_spatial)
    )
    return np.ascontiguousarray(local[crop])
