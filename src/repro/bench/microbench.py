"""The calibration microbenchmarks of section 4.3.

* :func:`atomic_microbenchmark` -- the CAS-rate benchmark: a ``32 x 64K``
  byte array (one 32 B cache line per thread), each of the 64 K threads
  issuing 10^6 conflict-free CAS operations; the per-atomic time is derived
  from the aggregate rate exactly as the paper does.  Expected result on the
  A100 preset: **87.45 ns**.

* :func:`compute_microbenchmark` -- the brick-compute benchmark: repeated
  fine-grained convolution calls on a shared-memory-resident brick; the
  per-call time is the inverse rate.  Expected result for an 8x8x8 brick
  with a 3x3x3 filter on the A100 preset: **6.72 us** (this is the
  calibration point of the ``call_overhead_s`` / ``sm_gflops_effective``
  constants in :mod:`repro.gpusim.spec`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.atomics import cas_microbenchmark_time
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["AtomicBenchResult", "ComputeBenchResult", "atomic_microbenchmark", "compute_microbenchmark"]


@dataclass(frozen=True)
class AtomicBenchResult:
    num_threads: int
    ops_per_thread: int
    total_time_s: float
    time_per_atomic_ns: float


@dataclass(frozen=True)
class ComputeBenchResult:
    brick: tuple[int, ...]
    kernel: tuple[int, ...]
    calls: int
    total_time_s: float
    time_per_call_us: float


def atomic_microbenchmark(
    spec: GPUSpec = A100,
    array_bytes: int = 32 * 64 * 1024,
    ops_per_thread: int = 10**6,
) -> AtomicBenchResult:
    """Reproduce T_atomic via the paper's CAS microbenchmark (section 4.3.1)."""
    num_threads = array_bytes // spec.transaction_bytes
    total, per_op = cas_microbenchmark_time(spec, num_threads, ops_per_thread)
    return AtomicBenchResult(
        num_threads=num_threads,
        ops_per_thread=ops_per_thread,
        total_time_s=total,
        time_per_atomic_ns=per_op * 1e9,
    )


def compute_microbenchmark(
    spec: GPUSpec = A100,
    brick: tuple[int, ...] = (8, 8, 8),
    kernel: tuple[int, ...] = (3, 3, 3),
    calls: int = 10**6,
) -> ComputeBenchResult:
    """Reproduce T_brick via the paper's compute microbenchmark (4.3.2).

    Each call convolves one brick (single channel, matching the benchmark's
    smem-resident independent bricks) with the given filter; flops per call
    = 2 * brick_volume * kernel_volume; per-call time is modeled by the
    device's fine-grained invocation cost.
    """
    flops_per_call = 2 * math.prod(brick) * math.prod(kernel)
    per_call = spec.task_time(flops_per_call)
    return ComputeBenchResult(
        brick=tuple(brick),
        kernel=tuple(kernel),
        calls=calls,
        total_time_s=per_call * calls,
        time_per_call_us=per_call * 1e6,
    )
