"""Benchmark harness reproducing the paper's evaluation (section 4).

* :mod:`repro.bench.reporting` -- result rows and ASCII tables,
* :mod:`repro.bench.proxies` -- the 6-layer and 3-layer 3-D conv proxy
  graphs of section 4.5,
* :mod:`repro.bench.microbench` -- the atomic-cost and brick-compute-cost
  microbenchmarks of section 4.3,
* :mod:`repro.bench.harness` -- runners that execute a graph under every
  system/strategy and collect breakdown rows,
* :mod:`repro.bench.figures` -- one driver per evaluation figure
  (Fig. 7 end-to-end, Fig. 8/9 ResNet-50 case study, Fig. 10 merge-depth
  sweep, Fig. 11 brick-size sweep) plus the design ablations.
"""

from repro.bench.reporting import BreakdownRow, format_table
from repro.bench.harness import run_brickdl, run_conventional, scale_preset
from repro.bench import figures, microbench, proxies

__all__ = [
    "BreakdownRow",
    "format_table",
    "run_brickdl",
    "run_conventional",
    "scale_preset",
    "figures",
    "microbench",
    "proxies",
]
