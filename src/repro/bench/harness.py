"""Benchmark runners: execute a graph under each system, collect rows.

All benchmark executions run in *profile* mode (access streams and the cost
model, no NumPy arithmetic), so paper-scale graphs are tractable; numerical
correctness is covered separately by the functional test suite.

Scale presets
-------------
The paper's microbenchmark volumes (``224^3 x 64`` activations) are large
for a pure-Python discrete simulation, so the harness supports three scales
selected by the ``BRICKDL_SCALE`` environment variable:

* ``small`` (default) -- reduced spatial extents; every comparison and
  crossover of the paper is still exercised, in seconds.
* ``half`` -- the paper's 6-layer proxy size (112^3); minutes.
* ``full`` -- the paper's exact sizes everywhere; tens of minutes.

EXPERIMENTS.md records which scale produced the reported numbers.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import replace

from repro.bench.reporting import BreakdownRow
from repro.core.engine import BrickDLEngine
from repro.core.plan import ExecutionPlan, Strategy
from repro.core.perfmodel import DEFAULT_CONFIG, PerfModelConfig
from repro.baselines.conventional import ConventionalExecutor
from repro.graph.ir import Graph
from repro.gpusim.device import Device
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["scale_preset", "run_brickdl", "run_conventional", "adapt_sectors",
           "record_bench_manifest", "run_serve_loadgen"]

_SCALES = ("small", "half", "full")


def scale_preset() -> str:
    """Benchmark scale from ``BRICKDL_SCALE`` (small | half | full)."""
    scale = os.environ.get("BRICKDL_SCALE", "small").lower()
    if scale not in _SCALES:
        raise ValueError(f"BRICKDL_SCALE must be one of {_SCALES}, got {scale!r}")
    return scale


def adapt_sectors(spec: GPUSpec, plan: ExecutionPlan) -> GPUSpec:
    """Match cache-residency tracking granularity to the brick size.

    Bricks are the unit of data movement in merged execution; tracking L2
    residency at a fraction of a brick wastes simulation time without
    changing any transaction count (those are byte-derived).  Clamped so
    degenerate plans cannot produce absurd sectors.
    """
    brick_bytes = []
    for sub in plan.subgraphs:
        if not sub.is_merged:
            continue
        channels = max(sub.subgraph.graph.node(n).spec.channels for n in sub.subgraph.node_ids)
        brick_bytes.append(channels * math.prod(sub.brick_shape) * 4)
    if not brick_bytes:
        return spec
    sector = min(max(min(brick_bytes), spec.l2_sector_bytes), 256 * 1024)
    return replace(spec, l2_sector_bytes=sector, l1_sector_bytes=min(sector, 16 * 1024))


def run_brickdl(
    graph: Graph,
    spec: GPUSpec = A100,
    config: PerfModelConfig = DEFAULT_CONFIG,
    strategy: Strategy | None = None,
    brick: int | None = None,
    layer_schedule: tuple[int, ...] | None = None,
    label: str | None = None,
    trace: "str | os.PathLike | None" = None,
    verify: bool = False,
    manifest: "str | os.PathLike | None" = None,
    sim_path: str | None = None,
) -> tuple[BreakdownRow, ExecutionPlan]:
    """Profile one BrickDL configuration; returns (row, plan).

    ``trace`` optionally names a file to receive the run's task timeline as
    Chrome-trace/Perfetto JSON (see :mod:`repro.profiling`).  ``verify``
    turns on the engine's strict mode: the compiled plan is checked against
    the analysis passes (:mod:`repro.analysis`) and the run's trace is
    replay-verified, so a benchmark number can only come from a run the
    checkers accept.  ``manifest`` optionally names a file to receive the
    run's :class:`~repro.metrics.RunManifest` (spec + plan digest + full
    metric dump), the record the perf-diff gate compares across commits.
    """
    engine = BrickDLEngine(
        graph,
        spec=spec,
        config=config,
        strategy_override=strategy,
        brick_override=brick,
        layer_schedule=layer_schedule,
        strict=verify,
    )
    plan = engine.compile()
    device = Device(adapt_sectors(spec, plan), sim_path=sim_path)
    t0 = time.perf_counter()
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    sim_wall_s = time.perf_counter() - t0
    if trace is not None and result.trace is not None:
        from repro.bench.export import write_trace

        write_trace(result.trace, trace,
                    names={n.node_id: n.name for n in graph.nodes})
    name = label or (f"brickdl/{strategy.value}" if strategy else "brickdl")
    if manifest is not None:
        from repro.metrics import manifest_from_result

        manifest_from_result(
            graph.name, result, device.spec, label=name, scale=scale_preset(),
            wall={"sim_wall_s": round(sim_wall_s, 4), "sim_path": device.sim_path},
        ).save(manifest)
    return BreakdownRow.from_metrics(name, result.metrics), plan


def record_bench_manifest(
    model: str,
    out_dir: "str | os.PathLike" = ".",
    spec: GPUSpec = A100,
    config: PerfModelConfig = DEFAULT_CONFIG,
    strategy: Strategy | None = None,
    brick: int | None = None,
    label: str | None = None,
    sim_path: str | None = None,
    optimize: bool = False,
    rules=None,
    **build_kwargs,
):
    """Record one zoo model's run as a ``BENCH_<model>[__<label>].json`` manifest.

    This is the trajectory entry point: the ``repro metrics record`` CLI and
    the CI perf-smoke job both come through here, so a committed baseline and
    a fresh CI run are produced by the same code path.  ``optimize`` runs the
    validated graph-rewrite pipeline before compiling (``rules`` optionally
    selects the batches, as for :meth:`BrickDLEngine.compile`); the rewrite
    provenance lands in the manifest's ``rewrite`` block.  Returns
    ``(manifest, path)``.
    """
    from repro.metrics import bench_manifest_path, manifest_from_result
    from repro.models import zoo

    graph = zoo.build(model, **build_kwargs)
    engine = BrickDLEngine(graph, spec=spec, config=config,
                           strategy_override=strategy, brick_override=brick)
    plan = engine.compile(optimize=optimize or rules is not None, rules=rules)
    device = Device(adapt_sectors(spec, plan), sim_path=sim_path)
    t0 = time.perf_counter()
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    sim_wall_s = time.perf_counter() - t0
    if label is None:
        label = strategy.value if strategy else ""
    manifest = manifest_from_result(
        model, result, device.spec, label=label, scale=scale_preset(),
        build_args=build_kwargs,
        wall={"sim_wall_s": round(sim_wall_s, 4), "sim_path": device.sim_path},
        rewrite=(engine.rewrite_report.manifest_dict()
                 if engine.rewrite_report is not None else None),
    )
    path = manifest.save(bench_manifest_path(model, out_dir, label=label))
    return manifest, path


def run_serve_loadgen(
    model: str,
    requests: int = 200,
    devices: int = 2,
    mode: str = "poisson",
    rate: float = 100.0,
    concurrency: int = 8,
    max_batch: int = 8,
    max_wait_s: float = 0.02,
    queue_depth: int = 64,
    cache_capacity: int = 16,
    saturation_policy: str = "degrade",
    functional: bool = True,
    strategy: Strategy | None = None,
    brick: int | None = None,
    timeout_s: float | None = None,
    seed: int = 0,
    verify: int = 0,
    spec: GPUSpec = A100,
    manifest: "str | os.PathLike | None" = None,
    trace: "str | os.PathLike | None" = None,
    latency_csv: "str | os.PathLike | None" = None,
    straggler_device: int | None = None,
    straggler_delay_s: float = 0.0,
    slo_objective: float = 0.99,
    slo_latency_target_s: float | None = None,
    batching: str = "head",
    autoscale: "tuple[int, int] | None" = None,
    **build_kwargs,
):
    """Serve one zoo model under synthetic traffic; returns ``(report, server)``.

    The shared path of the ``repro loadgen`` CLI, the CI serve-smoke and
    obs-smoke jobs, and ``benchmarks/bench_serve.py``, so a committed smoke
    threshold and a local run exercise the same code.  ``manifest``
    optionally names a file to receive the session's serving
    :class:`~repro.metrics.RunManifest`.

    ``trace`` enables request-scoped distributed tracing (``repro.obs``):
    the JSONL span log lands at the given path, and a flight recorder dumps
    ``flightrec-<reason>.json`` next to it on error/reject/timeout/SLO
    breach.  ``latency_csv`` dumps one row per request.  ``straggler_*``
    inject wall-clock delay on one device; the ``slo_*`` knobs set the
    burn-rate objective (see :class:`repro.metrics.slo.SLOConfig`).
    """
    from pathlib import Path

    from repro.models import zoo
    from repro.serve import InferenceServer, ServeConfig, loadgen

    graph = zoo.build(model, **build_kwargs)
    autoscaler = None
    if autoscale is not None:
        from repro.serve import AutoscalerConfig

        lo, hi = autoscale
        autoscaler = AutoscalerConfig(min_devices=lo, max_devices=hi)
        devices = lo
    config = ServeConfig(
        devices=devices, max_batch=max_batch, max_wait_s=max_wait_s,
        queue_depth=queue_depth, cache_capacity=cache_capacity,
        saturation_policy=saturation_policy, functional=functional,
        strategy=strategy, brick=brick, default_timeout_s=timeout_s,
        slo_objective=slo_objective,
        slo_latency_target_s=slo_latency_target_s,
        straggler_device=straggler_device,
        straggler_delay_s=straggler_delay_s,
        batching=batching,
        autoscaler=autoscaler,
    )
    tracer = None
    if trace is not None:
        from repro.obs import FlightRecorder, Tracer

        trace_path = Path(trace)
        tracer = Tracer(log_path=trace_path,
                        recorder=FlightRecorder(
                            out_dir=trace_path.parent or Path(".")))
    server = InferenceServer(graph, spec=spec, config=config, tracer=tracer)
    report = loadgen(server, requests=requests, mode=mode, rate=rate,
                     concurrency=concurrency, seed=seed, verify=verify,
                     latency_csv=latency_csv)
    if tracer is not None:
        tracer.close()
    if manifest is not None:
        server.manifest(scale=scale_preset()).save(manifest)
    return report, server


def run_conventional(
    executor_cls: type[ConventionalExecutor],
    graph: Graph,
    spec: GPUSpec = A100,
    label: str | None = None,
    **kwargs,
) -> BreakdownRow:
    """Profile one conventional baseline."""
    executor = executor_cls(graph, spec=spec, **kwargs)
    result = executor.run(inputs=None, functional=False)
    return BreakdownRow.from_metrics(label or executor.name, result.metrics)
