"""Result rows and plain-text tables for the benchmark harness.

The paper's figures are stacked bar charts; the harness prints the same
data as tables: one :class:`BreakdownRow` per bar, with the memory-side
(DRAM, idle) and compute-side (compute, atomics, other) components and the
transaction counters of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gpusim.device import RunMetrics

__all__ = ["BreakdownRow", "format_table", "format_breakdowns"]


@dataclass(frozen=True)
class BreakdownRow:
    """One configuration's result (one bar of a paper figure)."""

    label: str
    total: float
    dram: float
    idle: float
    compute: float
    atomics_compulsory: float
    atomics_conflict: float
    other: float
    l1_txns: int
    l2_txns: int
    dram_txns: int
    num_tasks: int
    atomics_compulsory_count: int
    atomics_conflict_count: int
    # Fig. 9 plots reads and writes separately; defaulted so hand-built rows
    # (tests, ad-hoc tables) stay valid without the split.
    dram_read_txns: int = 0
    dram_write_txns: int = 0

    @classmethod
    def from_metrics(cls, label: str, metrics: RunMetrics) -> "BreakdownRow":
        t = metrics.time
        return cls(
            label=label,
            total=t.total,
            dram=t.dram,
            idle=t.idle,
            compute=t.compute,
            atomics_compulsory=t.atomics_compulsory,
            atomics_conflict=t.atomics_conflict,
            other=t.other,
            l1_txns=metrics.memory.l1_txns,
            l2_txns=metrics.memory.l2_txns,
            dram_txns=metrics.memory.dram_txns,
            num_tasks=metrics.num_tasks,
            atomics_compulsory_count=metrics.atomics.compulsory,
            atomics_conflict_count=metrics.atomics.conflict,
            dram_read_txns=metrics.memory.dram_read_txns,
            dram_write_txns=metrics.memory.dram_write_txns,
        )

    def normalized_to(self, baseline: "BreakdownRow") -> dict[str, float]:
        """Ratios against a baseline row (the paper's normalized plots)."""
        def ratio(a: float, b: float) -> float:
            return a / b if b else float("nan")

        return {
            "total": ratio(self.total, baseline.total),
            "dram_time": ratio(self.dram, baseline.dram),
            "l1_txns": ratio(self.l1_txns, baseline.l1_txns),
            "l2_txns": ratio(self.l2_txns, baseline.l2_txns),
            "dram_txns": ratio(self.dram_txns, baseline.dram_txns),
            "dram_read_txns": ratio(self.dram_read_txns, baseline.dram_read_txns),
            "dram_write_txns": ratio(self.dram_write_txns, baseline.dram_write_txns),
        }


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_breakdowns(rows: Sequence[BreakdownRow], title: str = "", relative_to: BreakdownRow | None = None) -> str:
    """The paper's breakdown-bar data as a table (times in ms)."""
    headers = ["config", "total", "dram", "idle", "compute", "atomics(c)", "atomics(x)", "other",
               "L1 txn", "L2 txn", "DRAM txn", "DRAM rd", "DRAM wr", "tasks"]
    if relative_to is not None:
        headers.insert(1, "vs base")
    table_rows = []
    for r in rows:
        row = [r.label,
               f"{r.total * 1e3:.3f}", f"{r.dram * 1e3:.3f}", f"{r.idle * 1e3:.3f}",
               f"{r.compute * 1e3:.3f}", f"{r.atomics_compulsory * 1e3:.3f}",
               f"{r.atomics_conflict * 1e3:.3f}", f"{r.other * 1e3:.3f}",
               r.l1_txns, r.l2_txns, r.dram_txns,
               r.dram_read_txns, r.dram_write_txns, r.num_tasks]
        if relative_to is not None:
            row.insert(1, f"{r.total / relative_to.total:.3f}")
        table_rows.append(row)
    return format_table(headers, table_rows, title=title)


def _fmt(c: object) -> str:
    if isinstance(c, float):
        return f"{c:.4g}"
    return str(c)
