"""Export benchmark results to CSV / JSON for external plotting.

The paper's figures are bar charts; users replotting them want the raw
series.  ``figure_to_csv`` emits one row per bar with every breakdown
component and counter; ``figure_to_json`` keeps the grouping structure.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import pathlib

from repro.bench.reporting import BreakdownRow

__all__ = ["figure_to_csv", "figure_to_json", "write_figure", "write_trace"]

_FIELDS = [f.name for f in dataclasses.fields(BreakdownRow)]


def figure_to_csv(result) -> str:
    """CSV with columns ``group, <every BreakdownRow field>``."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["group"] + _FIELDS)
    for group, rows in result.groups.items():
        for row in rows:
            writer.writerow([group] + [getattr(row, f) for f in _FIELDS])
    return buf.getvalue()


def figure_to_json(result) -> str:
    """JSON preserving the figure's group structure."""
    payload = {
        "name": result.name,
        "groups": {
            group: [dataclasses.asdict(row) for row in rows]
            for group, rows in result.groups.items()
        },
    }
    return json.dumps(payload, indent=1)


def write_figure(result, path: str | pathlib.Path) -> pathlib.Path:
    """Write a figure result; the suffix picks the format (.csv or .json)."""
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        path.write_text(figure_to_csv(result))
    elif path.suffix == ".json":
        path.write_text(figure_to_json(result))
    else:
        raise ValueError(f"unsupported export format {path.suffix!r} (use .csv or .json)")
    return path


def write_trace(collector, path: str | pathlib.Path, names=None) -> pathlib.Path:
    """Write a run's task timeline; the suffix picks the format.

    ``.json`` emits Chrome-trace/Perfetto JSON, ``.csv`` the per-node
    attribution summary.  ``collector`` is a
    :class:`repro.profiling.TraceCollector` (e.g. ``EngineResult.trace``).
    """
    from repro.profiling import write_chrome_trace, write_summary_csv

    path = pathlib.Path(path)
    if path.suffix == ".csv":
        return write_summary_csv(collector, path, names=names)
    if path.suffix == ".json":
        return write_chrome_trace(collector, path, names=names)
    raise ValueError(f"unsupported trace format {path.suffix!r} (use .csv or .json)")
