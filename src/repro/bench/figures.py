"""Experiment drivers: one function per evaluation figure of the paper.

Each driver returns structured results and can render the same rows/series
the paper plots:

* :func:`fig7_end_to_end`   -- seven models x {cuDNN, BrickDL, TorchScript,
  XLA}, normalized execution time with memory/compute split (Fig. 7);
* :func:`fig8_resnet_case_study` -- ResNet-50 subgraphs x {cuDNN, padded,
  memoized} full time breakdowns (Fig. 8);
* :func:`fig9_data_movement` -- the same subgraphs' L1/L2/DRAM transactions
  relative to cuDNN (Fig. 9);
* :func:`fig10_subgraph_size` -- 6-layer proxy, merge configurations
  2+2+2 / 3+3 / 4+2 / 6 for both strategies (Fig. 10);
* :func:`fig11_brick_size` -- 3-layer proxy, brick sizes 4^3..32^3 for both
  strategies (Fig. 11);
* ablation drivers for the design constants (delta threshold, tau, L2).
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass

from repro.baselines.cudnn import CudnnBaseline
from repro.baselines.torchscript import TorchScriptBaseline
from repro.baselines.xla import XlaBaseline
from repro.bench.harness import run_brickdl, run_conventional, scale_preset
from repro.bench.proxies import six_layer_proxy, three_layer_proxy
from repro.bench.reporting import BreakdownRow, format_breakdowns, format_table
from repro.core.engine import BrickDLEngine
from repro.core.perfmodel import DEFAULT_CONFIG, PerfModelConfig
from repro.core.plan import Strategy
from repro.graph.traversal import materialize_subgraph
from repro.gpusim.spec import A100, GPUSpec
from repro.models import zoo

__all__ = [
    "fig7_end_to_end",
    "fig8_resnet_case_study",
    "fig9_data_movement",
    "fig10_subgraph_size",
    "fig11_brick_size",
    "ablation_delta_threshold",
    "ablation_tau",
    "ablation_l2_capacity",
    "ablation_cross_architecture",
]

# Paper order of the Fig. 7 x-axis.
FIG7_MODEL_ORDER = ("resnet50", "drn26", "resnet3d34", "darknet53", "vgg16", "deepcam", "inception_v4")

_IMAGE_SIZE = {"small": 96, "half": 160, "full": 224}
_CLIP_SIZE = {"small": (8, 48, 48), "half": (12, 80, 80), "full": (16, 112, 112)}
# The ResNet-50 case study needs enough spatial extent for ~7 merged
# subgraphs before the tiny-layer fallback kicks in.
_FIG8_SIZE = {"small": 160, "half": 224, "full": 224}
_FIG10_SIZE = {"small": 56, "half": 112, "full": 112}
# The brick-size sweep is only meaningful when a 32^3 brick still leaves a
# usable grid; 112^3 is the smallest faithful size (the paper uses 224^3).
_FIG11_SIZE = {"small": 112, "half": 112, "full": 224}


def _manifest_path(manifest_dir: "str | os.PathLike | None",
                   stem: str) -> pathlib.Path | None:
    """Per-run manifest destination inside a figure's output directory.

    The drivers persist one :class:`~repro.metrics.RunManifest` per BrickDL
    configuration so every plotted bar carries plan/spec provenance; ``None``
    (no directory) disables recording.
    """
    if manifest_dir is None:
        return None
    directory = pathlib.Path(manifest_dir)
    directory.mkdir(parents=True, exist_ok=True)
    safe = stem.replace("+", "-").replace("/", "_").replace(" ", "_")
    return directory / f"{safe}.manifest.json"


def _model_kwargs(name: str, scale: str) -> dict:
    if name == "resnet3d34":
        return {"clip": _CLIP_SIZE[scale]}
    if name == "deepcam":
        return {"image_size": _IMAGE_SIZE[scale]}
    return {"image_size": _IMAGE_SIZE[scale]}


@dataclass
class FigureResult:
    """Rows of one figure, grouped for rendering."""

    name: str
    groups: dict[str, list[BreakdownRow]]

    def render(self) -> str:
        parts = [f"== {self.name} =="]
        for group, rows in self.groups.items():
            base = rows[0]
            parts.append(format_breakdowns(rows, title=f"-- {group} --", relative_to=base))
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Fig. 7: end-to-end model inference
# ---------------------------------------------------------------------------

def fig7_end_to_end(
    models: tuple[str, ...] = FIG7_MODEL_ORDER,
    spec: GPUSpec = A100,
    scale: str | None = None,
    manifest_dir: "str | os.PathLike | None" = None,
) -> FigureResult:
    """Seven models under cuDNN / BrickDL / TorchScript / XLA."""
    scale = scale or scale_preset()
    groups: dict[str, list[BreakdownRow]] = {}
    for name in models:
        graph_for = lambda: zoo.MODELS[name](**_model_kwargs(name, scale))
        rows = [run_conventional(CudnnBaseline, graph_for(), spec=spec)]
        brick_row, _ = run_brickdl(graph_for(), spec=spec, label="brickdl",
                                   manifest=_manifest_path(manifest_dir, f"fig7__{name}__brickdl"))
        rows.append(brick_row)
        rows.append(run_conventional(TorchScriptBaseline, graph_for(), spec=spec))
        rows.append(run_conventional(XlaBaseline, graph_for(), spec=spec))
        groups[name] = rows
    return FigureResult(name=f"Fig. 7 end-to-end inference (scale={scale})", groups=groups)


def fig7_summary_table(result: FigureResult) -> str:
    """The headline normalized numbers: execution time relative to cuDNN."""
    headers = ["model", "cudnn", "brickdl", "torchscript", "xla",
               "speedup vs cudnn", "dram-time vs cudnn"]
    rows = []
    for model, bars in result.groups.items():
        base = bars[0]
        norm = {r.label: r.total / base.total for r in bars}
        brick = next(r for r in bars if r.label == "brickdl")
        rows.append([
            model,
            "1.000",
            f"{norm['brickdl']:.3f}",
            f"{norm['torchscript']:.3f}",
            f"{norm['xla']:.3f}",
            f"{(1 - brick.total / base.total) * 100:+.1f}%",
            f"{(1 - brick.dram / base.dram) * 100:+.1f}%" if base.dram else "n/a",
        ])
    return format_table(headers, rows, title=result.name)


# ---------------------------------------------------------------------------
# Fig. 8 / Fig. 9: ResNet-50 case study
# ---------------------------------------------------------------------------

def fig8_resnet_case_study(
    spec: GPUSpec = A100,
    scale: str | None = None,
    num_subgraphs: int = 7,
    config: PerfModelConfig = DEFAULT_CONFIG,
    manifest_dir: "str | os.PathLike | None" = None,
) -> FigureResult:
    """First ``num_subgraphs`` merged ResNet-50 subgraphs under
    cuDNN / padded / memoized (each subgraph run in isolation)."""
    scale = scale or scale_preset()
    graph = zoo.MODELS["resnet50"](image_size=_FIG8_SIZE[scale])
    plan = BrickDLEngine(graph, spec=spec, config=config).compile()
    merged = [s for s in plan.subgraphs if s.is_merged][:num_subgraphs]

    groups: dict[str, list[BreakdownRow]] = {}
    for i, sub in enumerate(merged, start=1):
        sub_model = materialize_subgraph(sub.subgraph, name=f"resnet50/sub{i}")
        brick = max(sub.brick_shape) if sub.brick_shape else None
        rows = [run_conventional(CudnnBaseline, sub_model, spec=spec)]
        for strategy in (Strategy.PADDED, Strategy.MEMOIZED):
            row, _ = run_brickdl(
                materialize_subgraph(sub.subgraph, name=f"resnet50/sub{i}"),
                spec=spec,
                strategy=strategy,
                brick=brick,
                layer_schedule=(len(sub.subgraph),),
                label=strategy.value,
                manifest=_manifest_path(manifest_dir, f"fig8__sub{i}__{strategy.value}"),
            )
            rows.append(row)
        chosen = sub.strategy.value
        groups[f"subgraph {i} ({len(sub.subgraph)} ops, delta={sub.delta:.0%}, model chose {chosen})"] = rows
    return FigureResult(name=f"Fig. 8 ResNet-50 case study (scale={scale})", groups=groups)


def fig9_data_movement(fig8: FigureResult) -> str:
    """Fig. 9's normalized transaction counts, derived from the Fig. 8 runs.

    DRAM traffic is reported both folded and split read/write: the paper's
    Fig. 9 separates the two, and merged execution moves them differently
    (reads drop with reuse, writes with on-device intermediate death).
    """
    headers = ["subgraph", "strategy", "L1 vs cudnn", "L2 vs cudnn", "DRAM vs cudnn",
               "DRAM rd vs cudnn", "DRAM wr vs cudnn"]

    def fmt(x: float) -> str:
        return "n/a" if x != x else f"{x:.3f}"  # NaN: zero-count baseline

    rows = []
    for group, bars in fig8.groups.items():
        base = bars[0]
        for r in bars[1:]:
            n = r.normalized_to(base)
            rows.append([group.split(" (")[0], r.label,
                         fmt(n["l1_txns"]), fmt(n["l2_txns"]), fmt(n["dram_txns"]),
                         fmt(n["dram_read_txns"]), fmt(n["dram_write_txns"])])
    return format_table(headers, rows, title="Fig. 9 ResNet-50 data movement (relative to cuDNN)")


# ---------------------------------------------------------------------------
# Fig. 10: merge-depth sweep on the 6-layer proxy
# ---------------------------------------------------------------------------

MERGE_CONFIGS: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("2+2+2", (2, 2, 2)),
    ("3+3", (3, 3)),
    ("4+2", (4, 2)),
    ("6", (6,)),
)


def fig10_subgraph_size(
    spec: GPUSpec = A100,
    scale: str | None = None,
    brick: int = 8,
    manifest_dir: "str | os.PathLike | None" = None,
) -> FigureResult:
    scale = scale or scale_preset()
    size = _FIG10_SIZE[scale]
    rows: list[BreakdownRow] = [
        run_conventional(CudnnBaseline, six_layer_proxy(size=size), spec=spec)
    ]
    for label, schedule in MERGE_CONFIGS:
        for strategy in (Strategy.PADDED, Strategy.MEMOIZED):
            row, _ = run_brickdl(
                six_layer_proxy(size=size),
                spec=spec,
                strategy=strategy,
                brick=brick,
                layer_schedule=schedule,
                label=f"{label} {strategy.value}",
                manifest=_manifest_path(manifest_dir, f"fig10__{label}__{strategy.value}"),
            )
            rows.append(row)
    return FigureResult(
        name=f"Fig. 10 six-layer proxy, merge-depth sweep (size={size}^3, brick={brick}^3)",
        groups={"6-layer CNN proxy": rows},
    )


# ---------------------------------------------------------------------------
# Fig. 11: brick-size sweep on the 3-layer proxy
# ---------------------------------------------------------------------------

def fig11_brick_size(
    spec: GPUSpec = A100,
    scale: str | None = None,
    bricks: tuple[int, ...] = (4, 8, 16, 32),
    manifest_dir: "str | os.PathLike | None" = None,
) -> FigureResult:
    scale = scale or scale_preset()
    size = _FIG11_SIZE[scale]
    rows: list[BreakdownRow] = [
        run_conventional(CudnnBaseline, three_layer_proxy(size=size), spec=spec)
    ]
    for brick in bricks:
        for strategy in (Strategy.PADDED, Strategy.MEMOIZED):
            row, _ = run_brickdl(
                three_layer_proxy(size=size),
                spec=spec,
                strategy=strategy,
                brick=brick,
                layer_schedule=(3,),
                label=f"B{brick} {strategy.value}",
                manifest=_manifest_path(manifest_dir, f"fig11__B{brick}__{strategy.value}"),
            )
            rows.append(row)
    return FigureResult(
        name=f"Fig. 11 three-layer proxy, brick-size sweep (size={size}^3)",
        groups={"3-layer CNN proxy": rows},
    )


# ---------------------------------------------------------------------------
# Ablations of the design constants (DESIGN.md section 5)
# ---------------------------------------------------------------------------

def ablation_delta_threshold(
    spec: GPUSpec = A100,
    scale: str | None = None,
    thresholds: tuple[float, ...] = (0.05, 0.10, 0.15, 0.25, 0.50),
    num_subgraphs: int = 5,
) -> str:
    """How often does the delta rule pick the measured-faster strategy?

    Runs the ResNet-50 case-study subgraphs once, then evaluates each
    candidate threshold against the measured padded/memoized times.
    """
    fig8 = fig8_resnet_case_study(spec=spec, scale=scale, num_subgraphs=num_subgraphs)
    deltas: list[float] = []
    padded_faster: list[bool] = []
    for group, bars in fig8.groups.items():
        delta = float(group.split("delta=")[1].split("%")[0]) / 100.0
        padded = next(r for r in bars if r.label == "padded")
        memo = next(r for r in bars if r.label == "memoized")
        deltas.append(delta)
        padded_faster.append(padded.total <= memo.total)
    headers = ["threshold", "agreement", "detail"]
    rows = []
    for th in thresholds:
        agree = sum(1 for d, pf in zip(deltas, padded_faster) if (d <= th) == pf)
        rows.append([f"{th:.0%}", f"{agree}/{len(deltas)}",
                     " ".join("P" if pf else "M" for pf in padded_faster)])
    return format_table(headers, rows, title="Ablation: delta threshold vs measured best strategy")


def ablation_tau(
    spec: GPUSpec = A100,
    scale: str | None = None,
    taus: tuple[int, ...] = (2 ** 8, 2 ** 10, 2 ** 12, 2 ** 14),
) -> str:
    """Brick side chosen by the tau model vs the measured-fastest brick."""
    from repro.core.perfmodel import choose_brick_size

    fig11 = fig11_brick_size(spec=spec, scale=scale)
    rows_by_brick: dict[int, float] = {}
    for r in fig11.groups["3-layer CNN proxy"][1:]:
        brick = int(r.label.split()[0][1:])
        rows_by_brick[brick] = min(rows_by_brick.get(brick, float("inf")), r.total)
    best_measured = min(rows_by_brick, key=rows_by_brick.get)
    size = _FIG11_SIZE[scale or scale_preset()]
    headers = ["tau", "model brick", "measured best"]
    rows = []
    for tau in taus:
        cfg = PerfModelConfig(tau=tau)
        decision = choose_brick_size((size,) * 3, cfg, kernel_extent=3)
        rows.append([tau, decision.brick, best_measured])
    return format_table(headers, rows, title=f"Ablation: tau vs measured-best brick (size={size}^3)")


def ablation_l2_capacity(
    spec: GPUSpec = A100,
    scale: str | None = None,
    l2_sizes_mb: tuple[int, ...] = (10, 20, 40, 80),
) -> str:
    """Effect of L2 capacity on the best Fig. 10 merge configuration."""
    scale = scale or scale_preset()
    size = _FIG10_SIZE[scale]
    headers = ["L2 (MB)", "config", "strategy", "total (ms)", "dram txns"]
    rows = []
    for mb in l2_sizes_mb:
        dspec = spec.with_l2(mb * 1024 * 1024)
        best = None
        for label, schedule in MERGE_CONFIGS:
            for strategy in (Strategy.PADDED, Strategy.MEMOIZED):
                row, _ = run_brickdl(
                    six_layer_proxy(size=size), spec=dspec, strategy=strategy,
                    brick=8, layer_schedule=schedule, label=f"{label} {strategy.value}",
                )
                if best is None or row.total < best.total:
                    best = row
        rows.append([mb, best.label.split()[0], best.label.split()[1],
                     f"{best.total * 1e3:.3f}", best.dram_txns])
    return format_table(headers, rows, title="Ablation: L2 capacity vs best merge configuration")


def ablation_cross_architecture(
    scale: str | None = None,
    num_subgraphs: int = 4,
) -> str:
    """The delta rule across GPU architectures (section 3.3.2: the 15 %
    threshold "has been validated on multiple NVIDIA and AMD GPU
    architectures").  Runs the ResNet-50 case-study subgraphs on the A100
    and MI100-class presets and reports the padded/memoized winner per
    subgraph on each."""
    from repro.gpusim.spec import A100 as _A100, MI100

    headers = ["subgraph", "delta"]
    winners: dict[str, list[str]] = {}
    deltas: list[str] = []
    for spec in (_A100, MI100):
        fig8 = fig8_resnet_case_study(spec=spec, scale=scale, num_subgraphs=num_subgraphs)
        headers.append(f"{spec.name} winner")
        col = []
        for group, bars in fig8.groups.items():
            padded = next(r for r in bars if r.label == "padded")
            memo = next(r for r in bars if r.label == "memoized")
            col.append("padded" if padded.total <= memo.total else "memoized")
            if spec is _A100:
                deltas.append(group.split("delta=")[1].split(",")[0])
        winners[spec.name] = col
    rows = []
    for i in range(len(deltas)):
        rows.append([f"subgraph {i + 1}", deltas[i]] + [winners[n][i] for n in winners])
    return format_table(headers, rows,
                        title="Ablation: measured-best strategy across GPU architectures")
