"""CNN proxy microbenchmark graphs (section 4.5).

The paper characterizes merged execution with two synthetic proxies:

* a **six-layer** chain of 3-D convolutions whose first layer is a
  ``112x112x112`` convolution with 64 channels (stride 1, padding 0,
  dilation 1), "and the subsequent five layers are computed accordingly"
  (each unpadded 3^3 convolution shrinks the volume by 2 per dim);
* a **three-layer** chain starting from ``224x224x224`` with 64 channels,
  used for the brick-size sweep.

Both builders take a ``size`` parameter so the harness can run reduced-scale
sweeps (the default benchmark scale; see ``repro.bench.harness.scale_preset``)
without changing any structure.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.graph.tensorspec import TensorSpec

__all__ = ["conv_chain_3d", "six_layer_proxy", "three_layer_proxy"]


def conv_chain_3d(
    layers: int,
    size: int,
    channels: int = 64,
    kernel: int = 3,
    in_channels: int = 64,
    batch: int = 1,
) -> Graph:
    """A chain of ``layers`` unpadded 3-D convolutions."""
    b = GraphBuilder(f"conv3d_chain_{layers}x{size}", TensorSpec(batch, in_channels, (size,) * 3))
    for i in range(1, layers + 1):
        b.conv(channels, kernel, padding=0, bias=False, name=f"conv{i}")
    return b.finish()


def six_layer_proxy(size: int = 112, channels: int = 64) -> Graph:
    """The paper's six-layer merge-depth proxy (Fig. 10)."""
    return conv_chain_3d(layers=6, size=size, channels=channels)


def three_layer_proxy(size: int = 224, channels: int = 64) -> Graph:
    """The paper's three-layer brick-size proxy (Fig. 11)."""
    return conv_chain_3d(layers=3, size=size, channels=channels)
