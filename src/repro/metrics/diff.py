"""Manifest diffing: the perf-regression gate.

Compares two :class:`~repro.metrics.manifest.RunManifest` objects metric by
metric under per-metric *relative* tolerances.  All gated metrics here are
"higher is worse" (transactions, atomics, modeled time, task counts), which
matches how the paper argues: every figure is a cost that merged execution
drives *down*.

Semantics:

* a metric **regresses** when ``new > base * (1 + tol)`` (or grows at all
  from a zero baseline);
* it **improves** when ``new < base * (1 - tol)`` -- reported, never fatal;
* metrics without a configured tolerance are informational: listed when
  they moved, never gating (so adding a new counter cannot break CI until a
  tolerance is assigned to it);
* context mismatches (different model, spec constants, or plan digest) are
  *warnings*: the numbers are still compared, but the report says why they
  might legitimately differ.

``DiffReport.ok`` is False iff at least one gated metric regressed -- that is
what the CLI turns into a nonzero exit code and CI turns into a red build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.metrics.manifest import RunManifest

__all__ = ["DEFAULT_TOLERANCES", "MetricDelta", "DiffReport",
           "diff_manifests", "flatten_metrics"]

# Relative tolerances for the gated metrics (all higher-is-worse).  The
# simulation is deterministic, so the slack only needs to absorb benign
# modeling churn: counter-exact metrics get a tight 5%, conflict atomics --
# which depend on issue-order interleaving details -- get a loose 25%, and
# derived times sit in between.  Exact-count invariants (task count, flops)
# get zero slack: a change there means the plan or the executors changed.
DEFAULT_TOLERANCES: dict[str, float] = {
    "memory.dram_txns": 0.05,
    "memory.dram_read_txns": 0.05,
    "memory.dram_write_txns": 0.05,
    "memory.dram_bytes": 0.05,
    "memory.l1_txns": 0.05,
    "memory.l2_txns": 0.05,
    "atomics.compulsory": 0.05,
    "atomics.conflict": 0.25,
    "time.total": 0.10,
    "time.dram": 0.10,
    "num_tasks": 0.0,
    "total_flops": 0.0,
}


def flatten_metrics(tree: Mapping, prefix: str = "") -> dict[str, float]:
    """Dotted-path view of a nested metrics dict, numeric leaves only."""
    flat: dict[str, float] = {}
    for key, value in tree.items():
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = float(value)
    return flat


@dataclass(frozen=True)
class MetricDelta:
    """One metric's base -> new movement under its tolerance."""

    name: str
    base: float
    new: float
    tolerance: float | None      # None: informational, never gates

    @property
    def rel_change(self) -> float:
        if self.base:
            return (self.new - self.base) / abs(self.base)
        return 0.0 if self.new == self.base else float("inf")

    @property
    def regressed(self) -> bool:
        if self.tolerance is None:
            return False
        if self.base == 0:
            return self.new > 0
        return self.new > self.base * (1.0 + self.tolerance)

    @property
    def improved(self) -> bool:
        if self.tolerance is None:
            return False
        return self.new < self.base * (1.0 - self.tolerance)

    def render(self) -> str:
        change = self.rel_change
        arrow = ("=" if self.new == self.base
                 else "+" if self.new > self.base else "-")
        pct = "inf" if change == float("inf") else f"{change:+.1%}"
        flag = ("REGRESSION" if self.regressed
                else "improved" if self.improved
                else "ok" if self.tolerance is not None else "info")
        tol = f"tol {self.tolerance:.0%}" if self.tolerance is not None else "untracked"
        return (f"  [{arrow}] {self.name}: {self.base:g} -> {self.new:g} "
                f"({pct}, {tol}) {flag}")


@dataclass
class DiffReport:
    """Outcome of comparing two manifests."""

    base_label: str
    new_label: str
    deltas: list[MetricDelta] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, verbose: bool = False) -> str:
        lines = [f"manifest diff: {self.base_label} -> {self.new_label}"]
        for w in self.warnings:
            lines.append(f"  warning: {w}")
        shown = [d for d in self.deltas
                 if verbose or d.regressed or d.improved or d.new != d.base]
        for d in shown:
            lines.append(d.render())
        if not shown:
            lines.append("  (no metric moved)")
        verdict = ("FAIL: {} regression(s)".format(len(self.regressions))
                   if not self.ok else
                   f"OK ({len(self.improvements)} improvement(s))"
                   if self.improvements else "OK")
        lines.append(verdict)
        return "\n".join(lines)


def _context_warnings(base: "RunManifest", new: "RunManifest") -> list[str]:
    warnings = []
    if base.model != new.model:
        warnings.append(f"model mismatch: {base.model!r} vs {new.model!r}")
    if base.version != new.version:
        warnings.append(f"manifest version mismatch: {base.version} vs {new.version}")
    spec_diff = sorted(k for k in set(base.spec) | set(new.spec)
                       if base.spec.get(k) != new.spec.get(k))
    if spec_diff:
        warnings.append("spec constants differ: " + ", ".join(spec_diff))
    bdig = base.plan.get("digest")
    ndig = new.plan.get("digest")
    if bdig != ndig:
        warnings.append(f"plan digest changed ({bdig} -> {ndig}): "
                        "the compiler made different decisions, so metric "
                        "deltas reflect the new plan, not a pure regression")
    if base.scale != new.scale:
        warnings.append(f"scale preset mismatch: {base.scale!r} vs {new.scale!r}")
    return warnings


def diff_manifests(base: "RunManifest", new: "RunManifest",
                   tolerances: Mapping[str, float] | None = None,
                   base_label: str | None = None,
                   new_label: str | None = None) -> DiffReport:
    """Compare two manifests; ``tolerances`` overrides/extends the defaults."""
    tols = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tols.update(tolerances)

    report = DiffReport(
        base_label=base_label or base.summary().split(":")[0],
        new_label=new_label or new.summary().split(":")[0],
        warnings=_context_warnings(base, new),
    )
    flat_base = flatten_metrics(base.metrics)
    flat_new = flatten_metrics(new.metrics)
    for name in sorted(set(flat_base) | set(flat_new)):
        if name not in flat_base:
            report.warnings.append(f"metric {name} only in new manifest")
            continue
        if name not in flat_new:
            report.warnings.append(f"metric {name} only in base manifest")
            continue
        report.deltas.append(MetricDelta(
            name=name, base=flat_base[name], new=flat_new[name],
            tolerance=tols.get(name)))
    return report
