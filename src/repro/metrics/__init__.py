"""Metrics & regression tracking: registry, attribution, manifests, diffing.

The observability backbone of the reproduction.  Instrumented components
(the engine, executors, simulated device, cache model, interconnect) record
into a hierarchical :class:`~repro.metrics.registry.MetricsRegistry`; the
:mod:`~repro.metrics.attribute` module classifies what each run/subgraph is
bound by via the paper's section 4 derivations; :mod:`~repro.metrics.manifest`
persists runs as versioned ``BENCH_<model>.json`` manifests; and
:mod:`~repro.metrics.diff` gates regressions against committed baselines.

Import-order note: :mod:`repro.gpusim.device` imports this package for its
registry, so nothing imported *here* may import gpusim at module scope
(submodules use ``TYPE_CHECKING``-only imports for gpusim types).
"""

from repro.metrics.attribute import (
    COMPONENTS,
    BottleneckReport,
    RooflinePoint,
    attribute_run,
    attribute_subgraphs,
    attribution_table,
)
from repro.metrics.diff import (
    DEFAULT_TOLERANCES,
    DiffReport,
    MetricDelta,
    diff_manifests,
)
from repro.metrics.export import (
    CounterTrackSampler,
    metrics_csv,
    prometheus_textfile,
    write_metrics_csv,
    write_prometheus_textfile,
)
from repro.metrics.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    bench_manifest_path,
    manifest_from_result,
    manifest_from_serve,
    plan_digest,
)
from repro.metrics.registry import (
    BATCH_BUCKETS,
    LABEL_HIERARCHY,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.metrics.slo import BurnAlert, BurnRateMonitor, SLOConfig, burn_rate

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "Sample",
    "LABEL_HIERARCHY", "LATENCY_BUCKETS_S", "BATCH_BUCKETS",
    "SLOConfig", "BurnAlert", "BurnRateMonitor", "burn_rate",
    "BottleneckReport", "RooflinePoint", "COMPONENTS",
    "attribute_run", "attribute_subgraphs", "attribution_table",
    "RunManifest", "MANIFEST_VERSION", "manifest_from_result",
    "manifest_from_serve", "bench_manifest_path", "plan_digest",
    "DiffReport", "MetricDelta", "DEFAULT_TOLERANCES", "diff_manifests",
    "CounterTrackSampler", "prometheus_textfile", "write_prometheus_textfile",
    "metrics_csv", "write_metrics_csv",
]
