"""SLO currency: objectives, trailing windows, and burn-rate derivation.

The serving layer promises a *deadline-attainment* objective ("99% of
requests meet their deadline").  The classic way to alert on such an
objective without paging on every blip is the multi-window **burn rate**
(SRE workbook, ch. 5): the observed error rate divided by the error
budget ``1 - objective``.  A burn rate of 1.0 consumes exactly the budget
over the SLO period; 14.4 consumes a 30-day budget in two hours.  Alerts
fire only when *both* a short and a long trailing window burn above the
threshold -- the short window makes the alert responsive, the long window
keeps a transient spike from paging.

This module is pure derivation (no asyncio, no server types): the serve
layer feeds ``record(now, good)`` per request and polls ``check(now)``.
Windows here default to seconds (5 s / 30 s) rather than the production
5 m / 1 h, because a loadgen session lives seconds -- the math is
identical, only the horizon scales.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["SLOConfig", "BurnAlert", "BurnRateMonitor", "burn_rate"]


def burn_rate(bad: int, total: int, objective: float) -> float:
    """Error-budget consumption rate: error rate over the budget.

    ``burn_rate(5, 100, 0.99) == 5.0`` -- a 5% error rate burns a 1%
    budget five times faster than sustainable.  Zero traffic burns
    nothing; a zero budget (objective 1.0) burns infinitely fast the
    moment anything fails.
    """
    if total <= 0:
        return 0.0
    budget = 1.0 - objective
    if budget <= 0.0:
        return float("inf") if bad else 0.0
    return (bad / total) / budget


@dataclass(frozen=True)
class SLOConfig:
    """One service-level objective and its alerting policy.

    ``windows`` is a tuple of ``(short_s, long_s)`` pairs; an alert needs
    *both* windows of a pair burning above ``burn_threshold``.
    ``latency_target_s`` optionally tightens "good" beyond deadline
    attainment: a request is good only if it also completed within the
    target (the deterministic objective the CI straggler run trips).
    """

    objective: float = 0.99
    windows: tuple[tuple[float, float], ...] = ((5.0, 30.0),)
    burn_threshold: float = 14.4
    min_events: int = 10           # don't alert off a near-empty window
    latency_target_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(f"objective must be in (0, 1], got {self.objective}")
        for short_s, long_s in self.windows:
            if not 0.0 < short_s <= long_s:
                raise ValueError(
                    f"window pair must satisfy 0 < short <= long, "
                    f"got ({short_s}, {long_s})")
        if self.burn_threshold <= 0:
            raise ValueError(f"burn_threshold must be > 0, got {self.burn_threshold}")


@dataclass(frozen=True)
class BurnAlert:
    """One fired multi-window burn-rate alert."""

    time_s: float
    short_window_s: float
    long_window_s: float
    short_burn: float
    long_burn: float
    threshold: float
    attainment: float      # lifetime good/total at fire time

    def as_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "short_burn": round(self.short_burn, 4),
            "long_burn": round(self.long_burn, 4),
            "threshold": self.threshold,
            "attainment": round(self.attainment, 6),
        }


class BurnRateMonitor:
    """Trailing-window burn rates over a stream of good/bad events.

    Events older than the longest configured window are pruned on every
    record, so memory is bounded by the traffic inside one horizon.  Each
    window *pair* latches: it alerts at most once per monitor lifetime
    (re-arming is a restart decision, not an alerting one).
    """

    def __init__(self, config: SLOConfig | None = None) -> None:
        self.config = config if config is not None else SLOConfig()
        self.horizon_s = max(long_s for _, long_s in self.config.windows)
        self._events: deque[tuple[float, bool]] = deque()
        self.total = 0
        self.good_total = 0
        self._fired: set[tuple[float, float]] = set()

    def record(self, now_s: float, good: bool) -> None:
        self.total += 1
        if good:
            self.good_total += 1
        self._events.append((now_s, good))
        cutoff = now_s - self.horizon_s
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()

    @property
    def attainment(self) -> float:
        """Lifetime fraction of good events (1.0 before any traffic)."""
        return self.good_total / self.total if self.total else 1.0

    def window_counts(self, window_s: float, now_s: float) -> tuple[int, int]:
        """``(bad, total)`` inside the trailing ``window_s`` seconds."""
        cutoff = now_s - window_s
        bad = total = 0
        for t, good in reversed(self._events):
            if t < cutoff:
                break
            total += 1
            if not good:
                bad += 1
        return bad, total

    def burn(self, window_s: float, now_s: float) -> float:
        bad, total = self.window_counts(window_s, now_s)
        return burn_rate(bad, total, self.config.objective)

    def check(self, now_s: float) -> list[BurnAlert]:
        """Alerts newly fired as of ``now_s`` (each pair fires once)."""
        fired = []
        for pair in self.config.windows:
            if pair in self._fired:
                continue
            short_s, long_s = pair
            short_bad, short_total = self.window_counts(short_s, now_s)
            if short_total < self.config.min_events:
                continue
            long_bad, long_total = self.window_counts(long_s, now_s)
            short_burn = burn_rate(short_bad, short_total, self.config.objective)
            long_burn = burn_rate(long_bad, long_total, self.config.objective)
            if (short_burn > self.config.burn_threshold
                    and long_burn > self.config.burn_threshold):
                self._fired.add(pair)
                fired.append(BurnAlert(
                    time_s=now_s, short_window_s=short_s, long_window_s=long_s,
                    short_burn=short_burn, long_burn=long_burn,
                    threshold=self.config.burn_threshold,
                    attainment=self.attainment))
        return fired

    def stats(self, now_s: float) -> dict:
        """The manifest/``stats()`` block: per-window burns + lifetime view."""
        return {
            "objective": self.config.objective,
            "latency_target_s": self.config.latency_target_s,
            "attainment": self.attainment,
            "events": self.total,
            "burn_rates": {
                f"{short_s:g}s/{long_s:g}s": {
                    "short": round(self.burn(short_s, now_s), 4),
                    "long": round(self.burn(long_s, now_s), 4),
                }
                for short_s, long_s in self.config.windows
            },
            "threshold": self.config.burn_threshold,
            "alerts_fired": len(self._fired),
        }
