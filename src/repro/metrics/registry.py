"""Hierarchical metrics registry: counters, gauges, histograms.

The observability backbone: every instrumented component (the device, the
four executors, the cache model, the interconnect) records into one
:class:`MetricsRegistry` under hierarchical labels

    ``(model, strategy, brick, subgraph, node)``

so the same registry can answer "how many DRAM transactions total?", "how
many in subgraph 3?", and "how many did node 17 produce under the memoized
strategy?" -- the Nsight-style drill-down the paper's evaluation reads off
real hardware (section 4).

Design notes
------------
* Metrics are identified by ``(name, labels)``.  Labels are free-form
  string pairs; the canonical hierarchy above is a convention, not a
  constraint -- exporters sort label keys for stable output.
* Default labels are supplied by nested :meth:`MetricsRegistry.label_scope`
  contexts (the device pushes one per plan subgraph), so instrumentation
  sites only name what they locally know (e.g. ``node=...``).
* Handles returned by :meth:`counter` / :meth:`gauge` / :meth:`histogram`
  are plain mutable cells, safe to cache on hot paths: the simulated device
  resolves its per-task counter set once per ``(scope, node)`` and then
  only does attribute increments.
* :meth:`as_dict` / :meth:`from_dict` give a versioned, JSON-stable dump --
  the "full metric dump" a :class:`~repro.metrics.manifest.RunManifest`
  embeds and the regression differ compares.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "Sample", "MetricsRegistry",
           "LABEL_HIERARCHY"]

# Canonical label hierarchy, coarse to fine (exporters order keys this way).
LABEL_HIERARCHY = ("model", "strategy", "brick", "subgraph", "node")

_KIND_COUNTER = "counter"
_KIND_GAUGE = "gauge"
_KIND_HISTOGRAM = "histogram"

# Power-of-four byte/size buckets: wide dynamic range, few buckets.
DEFAULT_BUCKETS = tuple(float(4 ** i) for i in range(1, 16))

# Latency buckets in seconds: ~sqrt(2)-spaced from 0.25 ms to 2 min, fine
# enough that interpolated p50/p99 are meaningful for serving workloads.
LATENCY_BUCKETS_S = tuple(0.00025 * 2 ** (i / 2) for i in range(38))

# Batch-size buckets: exact small sizes (dynamic batching buckets are powers
# of two, so each bucket boundary is a real batch size).
BATCH_BUCKETS = tuple(float(2 ** i) for i in range(9))


class Counter:
    """A monotonically increasing value (transactions, bytes, retries)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time level (live bytes, residency, final totals)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A distribution over fixed buckets (e.g. message sizes).

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot is
    the overflow bucket.  ``sum``/``count`` give the mean.

    ``exemplars`` (Prometheus-style) optionally link buckets back to trace
    ids: ``observe(v, exemplar=trace_id)`` remembers the last exemplar per
    bucket, so a latency bucket in a dump answers "show me one request
    that landed here".  Untraced observations leave the dict empty and the
    serialized form unchanged.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "exemplars",
                 "minimum", "maximum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.exemplars: dict[int, dict] = {}
        # Observed extremes: tighten quantile estimates on low-count
        # windows (p99 of 3 samples should never exceed the sample max) and
        # give the overflow bucket a real value instead of the top edge.
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self.sum += value
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        if exemplar is not None:
            self.exemplars[index] = {"trace_id": exemplar, "value": value}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by linear interpolation within
        the bucket containing the target rank.

        Resolution is bucket-bounded: pick buckets sized for the quantity
        (e.g. :data:`LATENCY_BUCKETS_S` for serving latencies).  Estimates
        are clamped into the observed ``[minimum, maximum]`` range, which
        pins the degenerate cases exactly: an empty histogram reports 0.0,
        a single distinct value reports itself at every ``q``, a p99 over a
        three-sample window never exceeds the largest sample, and mass in
        the overflow bucket reports the true maximum rather than the top
        finite edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        if self.minimum == self.maximum:   # single distinct value
            return self.minimum
        target = q * self.count
        cum = 0.0
        lo = 0.0
        estimate: float | None = None
        for edge, n in zip(self.buckets, self.counts):
            if n and cum + n >= target:
                estimate = lo + (target - cum) / n * (edge - lo)
                break
            cum += n
            lo = edge
        if estimate is None:   # target rank lands in the overflow bucket
            estimate = self.maximum if self.maximum is not None \
                else self.buckets[-1]
        if self.minimum is not None:
            estimate = max(estimate, self.minimum)
        if self.maximum is not None:
            estimate = min(estimate, self.maximum)
        return estimate

    def merge_doc(self, doc: Mapping) -> None:
        """Fold a serialized histogram (the :meth:`MetricsRegistry.samples`
        ``histogram`` dict) into this one.  Bucket layouts must match."""
        counts = doc.get("counts")
        if counts:
            if len(counts) != len(self.counts):
                raise ValueError(
                    f"bucket mismatch: {len(counts)} counts vs "
                    f"{len(self.counts)}")
            self.counts = [a + b for a, b in zip(self.counts, counts)]
        self.sum += float(doc.get("sum", 0.0))
        self.count += int(doc.get("count", 0))
        dmin, dmax = doc.get("min"), doc.get("max")
        if dmin is not None:
            self.minimum = dmin if self.minimum is None else min(self.minimum, dmin)
        if dmax is not None:
            self.maximum = dmax if self.maximum is None else max(self.maximum, dmax)


@dataclass(frozen=True)
class Sample:
    """One collected metric: name, kind, labels, and its value(s)."""

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...]
    value: float
    histogram: dict | None = None

    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form: hierarchy keys first, then the rest sorted."""
    items = {str(k): str(v) for k, v in labels.items() if v is not None}
    ordered = [(k, items.pop(k)) for k in LABEL_HIERARCHY if k in items]
    ordered.extend(sorted(items.items()))
    return tuple(ordered)


@dataclass
class MetricsRegistry:
    """Registry of labelled counters/gauges/histograms for one run (or many:
    nothing prevents aggregating several runs into one registry -- the
    ``model`` label keeps them apart)."""

    base_labels: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._context: list[dict[str, str]] = []
        # Bumped whenever the label context changes, so hot paths caching
        # resolved handles (the device's per-task counter rows) can key
        # their cache on it.
        self.context_token = 0

    # -- label context -------------------------------------------------------
    def set_base(self, **labels: object) -> None:
        """Set always-applied labels (e.g. ``model=graph.name``)."""
        for k, v in labels.items():
            if v is not None:
                self.base_labels[str(k)] = str(v)
        self.context_token += 1

    @contextmanager
    def label_scope(self, **labels: object) -> Iterator[None]:
        """Push default labels for the duration of the context."""
        frame = {str(k): str(v) for k, v in labels.items() if v is not None}
        self._context.append(frame)
        self.context_token += 1
        try:
            yield
        finally:
            self._context.pop()
            self.context_token += 1

    def current_labels(self, extra: Mapping[str, object] | None = None) -> dict[str, str]:
        merged: dict[str, str] = dict(self.base_labels)
        for frame in self._context:
            merged.update(frame)
        if extra:
            for k, v in extra.items():
                if v is not None:
                    merged[str(k)] = str(v)
        return merged

    # -- metric access -------------------------------------------------------
    def _get(self, name: str, kind: str, labels: Mapping[str, object],
             factory) -> Counter | Gauge | Histogram:
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise ValueError(f"metric {name!r} already registered as {known}, not {kind}")
        key = (name, _label_key(self.current_labels(labels)))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(name, _KIND_COUNTER, labels, Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(name, _KIND_GAUGE, labels, Gauge)

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        return self._get(name, _KIND_HISTOGRAM, labels, lambda: Histogram(buckets))

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Convenience one-shot counter increment."""
        self.counter(name, **labels).inc(amount)

    # -- collection ----------------------------------------------------------
    def samples(self) -> list[Sample]:
        out = []
        for (name, labels), metric in sorted(self._metrics.items()):
            kind = self._kinds[name]
            if isinstance(metric, Histogram):
                hist_doc = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
                # Extremes only exist once observed; empty histograms keep
                # the pre-extremes serialized shape.
                if metric.count:
                    hist_doc["min"] = metric.minimum
                    hist_doc["max"] = metric.maximum
                # Only serialized when present, so tracing-off dumps stay
                # byte-identical to pre-exemplar baselines.
                if metric.exemplars:
                    hist_doc["exemplars"] = {
                        str(i): dict(e) for i, e in sorted(metric.exemplars.items())}
                out.append(Sample(name, kind, labels, metric.sum,
                                  histogram=hist_doc))
            else:
                out.append(Sample(name, kind, labels, metric.value))
        return out

    def total(self, name: str, **match: object) -> float:
        """Aggregate a metric over every series matching the label subset.

        Counters and gauges sum their values; histograms sum their ``sum``.
        ``total("dram_txns", subgraph=0)`` rolls node-level series up to the
        subgraph -- the hierarchical query the labels exist for.
        """
        want = {str(k): str(v) for k, v in match.items() if v is not None}
        acc = 0.0
        for (mname, labels), metric in self._metrics.items():
            if mname != name:
                continue
            have = dict(labels)
            if any(have.get(k) != v for k, v in want.items()):
                continue
            acc += metric.sum if isinstance(metric, Histogram) else metric.value
        return acc

    def series(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """All label-sets of one metric and their scalar values."""
        return {labels: (m.sum if isinstance(m, Histogram) else m.value)
                for (mname, labels), m in self._metrics.items() if mname == name}

    def names(self) -> list[str]:
        return sorted(self._kinds)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- serialization -------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-stable dump: one entry per series, sorted."""
        entries = []
        for s in self.samples():
            entry: dict = {"name": s.name, "kind": s.kind,
                           "labels": s.label_dict(), "value": s.value}
            if s.histogram is not None:
                entry["histogram"] = s.histogram
            entries.append(entry)
        return {"base_labels": dict(self.base_labels), "series": entries}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsRegistry":
        reg = cls(base_labels=dict(payload.get("base_labels", {})))
        for entry in payload.get("series", ()):
            labels = entry.get("labels", {})
            kind = entry["kind"]
            if kind == _KIND_COUNTER:
                reg.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == _KIND_GAUGE:
                reg.gauge(entry["name"], **labels).set(entry["value"])
            else:
                h = entry.get("histogram", {})
                hist = reg.histogram(entry["name"],
                                     buckets=tuple(h.get("buckets", DEFAULT_BUCKETS)),
                                     **labels)
                hist.counts = list(h.get("counts", hist.counts))
                hist.sum = float(h.get("sum", 0.0))
                hist.count = int(h.get("count", 0))
                hist.minimum = h.get("min")
                hist.maximum = h.get("max")
                hist.exemplars = {int(i): dict(e)
                                  for i, e in h.get("exemplars", {}).items()}
        return reg
