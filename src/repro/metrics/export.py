"""Registry exporters: Prometheus textfile, CSV, and Perfetto counter tracks.

One registry, three sinks:

* :func:`prometheus_textfile` -- the node-exporter textfile-collector
  format, so a directory of benchmark runs can be scraped straight into a
  dashboard.  Metric names get a ``repro_`` prefix; histograms emit
  ``_bucket``/``_sum``/``_count`` series with cumulative ``le`` labels.
* :func:`metrics_csv` -- flat one-row-per-series CSV with the canonical
  label hierarchy as leading columns, for spreadsheet-grade analysis.
* :class:`CounterTrackSampler` -- a device observer that samples cumulative
  cache/atomic levels at every task completion; its tracks layer extra
  Perfetto counter ("C") rows onto the PR-1 Chrome trace via
  :func:`repro.profiling.export.chrome_trace`'s ``counter_tracks`` hook.
"""

from __future__ import annotations

import csv
import io
import pathlib
import re
from typing import TYPE_CHECKING

from repro.metrics.registry import LABEL_HIERARCHY, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - types only (gpusim imports repro.metrics)
    from repro.gpusim.device import Device, RunMetrics
    from repro.gpusim.trace import Task

__all__ = ["prometheus_textfile", "write_prometheus_textfile",
           "metrics_csv", "write_metrics_csv", "CounterTrackSampler"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_KINDS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""

    def order(k: str) -> tuple:
        return (LABEL_HIERARCHY.index(k) if k in LABEL_HIERARCHY
                else len(LABEL_HIERARCHY), k)

    body = ",".join(f'{_NAME_RE.sub("_", k)}="{_escape(merged[k])}"'
                    for k in sorted(merged, key=order))
    return "{" + body + "}"


def prometheus_textfile(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus exposition (textfile) format."""
    lines: list[str] = []
    typed: set[str] = set()
    for s in registry.samples():
        pname = _prom_name(s.name)
        if pname not in typed:
            lines.append(f"# TYPE {pname} {_PROM_KINDS.get(s.kind, 'untyped')}")
            typed.add(pname)
        labels = s.label_dict()
        if s.histogram is not None:
            cum = 0
            for edge, count in zip(s.histogram["buckets"], s.histogram["counts"]):
                cum += count
                lines.append(f'{pname}_bucket{_prom_labels(labels, {"le": f"{edge:g}"})} {cum}')
            cum += s.histogram["counts"][-1]
            lines.append(f'{pname}_bucket{_prom_labels(labels, {"le": "+Inf"})} {cum}')
            lines.append(f"{pname}_sum{_prom_labels(labels)} {s.histogram['sum']:g}")
            lines.append(f"{pname}_count{_prom_labels(labels)} {s.histogram['count']}")
        else:
            lines.append(f"{pname}{_prom_labels(labels)} {s.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_textfile(registry: MetricsRegistry,
                              path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(prometheus_textfile(registry))
    return path


def metrics_csv(registry: MetricsRegistry) -> str:
    """One row per series: hierarchy labels, extra labels, kind, value."""
    extra_keys = sorted({k for s in registry.samples()
                         for k in s.label_dict() if k not in LABEL_HIERARCHY})
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["name", "kind", *LABEL_HIERARCHY, *extra_keys, "value"])
    for s in registry.samples():
        labels = s.label_dict()
        writer.writerow([
            s.name, s.kind,
            *(labels.get(k, "") for k in LABEL_HIERARCHY),
            *(labels.get(k, "") for k in extra_keys),
            f"{s.value:g}",
        ])
    return buf.getvalue()


def write_metrics_csv(registry: MetricsRegistry,
                      path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(metrics_csv(registry))
    return path


class CounterTrackSampler:
    """Device observer that samples cumulative cache/atomic levels over time.

    At every task completion (and at finish) it records the current level of
    each tracked quantity, deduplicating unchanged samples.  ``tracks`` maps
    a display name to ``[(time_s, value), ...]`` -- exactly the shape
    :func:`repro.profiling.export.chrome_trace` accepts as extra counter
    tracks, giving the Perfetto timeline cache-behavior context the per-task
    "X" events cannot show (hit/miss byte levels, dirty write-back debt).
    """

    def __init__(self) -> None:
        self.tracks: dict[str, list[tuple[float, float]]] = {}

    def _sample(self, device: "Device", time_s: float) -> None:
        stats = device.memory.stats()
        levels = {
            "L1 hit bytes": stats["l1"]["hit_bytes"],
            "L2 hit bytes": stats["l2"]["hit_bytes"],
            "L2 miss bytes": stats["l2"]["miss_bytes"],
            "L2 evicted dirty bytes": stats["l2"]["evicted_dirty_bytes"],
            "atomics (cum)": device.atomics.compulsory + device.atomics.conflict,
        }
        for name, value in levels.items():
            track = self.tracks.setdefault(name, [])
            if not track or track[-1][1] != value:
                track.append((time_s, float(value)))

    # -- DeviceObserver interface (duck-typed) ------------------------------
    def on_alloc(self, device, buffer):
        pass

    def on_discard(self, device, buffer):
        pass

    def on_scope_begin(self, device, subgraph_index, strategy):
        pass

    def on_scope_end(self, device, subgraph_index, strategy):
        self._sample(device, device.now_s)

    def on_task_submit(self, device: "Device", task: "Task", delta) -> None:
        self._sample(device, task.end_s or device.now_s)

    def on_task_values(self, device, task, node_id, values):
        pass

    def on_sync(self, device, time_s: float):
        self._sample(device, time_s)

    def on_finish(self, device: "Device", metrics: "RunMetrics") -> None:
        self._sample(device, device.now_s)
