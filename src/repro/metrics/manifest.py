"""Run manifests: the versioned JSON record one benchmarked execution leaves.

A :class:`RunManifest` is the unit of the repo's performance trajectory:
the bench harness writes one per recorded run (``BENCH_<model>.json``), CI
records fresh ones and diffs them against committed baselines
(:mod:`repro.metrics.diff`), and future scaling PRs justify themselves by
the delta between two manifests rather than by vibes.

A manifest pins everything needed to interpret its numbers later:

* **provenance** -- schema version, model name and build arguments, scale
  preset, creation time, git SHA of the working tree;
* **spec** -- the simulated-device parameters the run used (cost-model
  constants included, so a calibration change shows up as a context
  mismatch, not a silent "regression");
* **plan** -- per-subgraph strategy/brick decisions plus a digest of the
  whole plan, so a diff can tell "the same plan got slower" apart from
  "the compiler chose a different plan";
* **metrics** -- the full :class:`~repro.gpusim.device.RunMetrics` dump,
  the hierarchical registry dump, and the bottleneck attribution.

Volatile fields (``created``, ``git_sha``) are metadata: the differ ignores
them.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.metrics.attribute import attribute_run, attribute_subgraphs

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.engine import EngineResult
    from repro.gpusim.spec import GPUSpec

__all__ = ["MANIFEST_VERSION", "RunManifest", "manifest_from_result",
           "manifest_from_serve", "plan_digest", "spec_dict", "git_sha",
           "bench_manifest_path"]

MANIFEST_VERSION = 1

# GPUSpec fields worth pinning: geometry plus every calibrated cost-model
# constant (a calibration change must surface as a context mismatch).
_SPEC_FIELDS = ("name", "num_sms", "l1_bytes", "l2_bytes", "dram_bandwidth",
                "transaction_bytes", "l1_sector_bytes", "l2_sector_bytes",
                "sm_gflops_effective", "call_overhead_s", "atomic_time_s",
                "sync_time_s", "memo_visit_s", "overlap_efficiency",
                "spin_interval_s", "dram_txn_rate")


def git_sha() -> str | None:
    """HEAD of the repository containing this package, if resolvable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def spec_dict(spec: "GPUSpec") -> dict:
    return {f: getattr(spec, f) for f in _SPEC_FIELDS}


def _plan_entries(plan) -> list[dict]:
    entries = []
    for sub in plan.subgraphs:
        entries.append({
            "index": sub.index,
            "strategy": sub.strategy.value,
            "brick": list(sub.brick_shape),
            "num_ops": len(sub.subgraph),
            "node_ids": list(sub.subgraph.node_ids),
            "delta": round(sub.delta, 6),
            "rho": round(sub.rho, 3),
            "footprint_bytes": sub.footprint_bytes,
            "reason": sub.reason,
        })
    return entries


def plan_digest(plan) -> str:
    """Stable digest of the compiled plan's decisions (not its timings)."""
    doc = {"graph": plan.graph.name, "subgraphs": _plan_entries(plan)}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _metrics_dict(metrics) -> dict:
    m, a, t = metrics.memory, metrics.atomics, metrics.time
    return {
        "memory": {
            "l1_txns": m.l1_txns,
            "l2_txns": m.l2_txns,
            "dram_read_txns": m.dram_read_txns,
            "dram_write_txns": m.dram_write_txns,
            "dram_txns": m.dram_txns,
            "dram_bytes": m.dram_bytes,
        },
        "atomics": {"compulsory": a.compulsory, "conflict": a.conflict},
        "time": {k: getattr(t, k) for k in (
            "total", "dram", "idle", "compute",
            "atomics_compulsory", "atomics_conflict", "other")},
        "num_tasks": metrics.num_tasks,
        "total_flops": metrics.total_flops,
    }


@dataclass
class RunManifest:
    """One recorded run, ready to serialize / diff / re-load."""

    model: str
    label: str = ""
    version: int = MANIFEST_VERSION
    created: str = ""
    git_sha: str | None = None
    scale: str | None = None
    build_args: dict = field(default_factory=dict)
    spec: dict = field(default_factory=dict)
    plan: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    registry: dict = field(default_factory=dict)
    bottleneck: dict = field(default_factory=dict)
    # Host-side wall-clock observations (simulator runtime, sim path).  Like
    # ``created``/``git_sha`` these are provenance, not modeled results: the
    # differ only compares ``metrics``, so wall times never gate CI.
    wall: dict = field(default_factory=dict)
    # Graph-rewrite provenance (RewriteReport.manifest_dict(): rules fired,
    # nodes removed/fused, validation level).  Empty when the run used the
    # graph as built.  Provenance only -- the differ ignores it.
    rewrite: dict = field(default_factory=dict)

    # -- serialization -------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "model": self.model,
            "label": self.label,
            "created": self.created,
            "git_sha": self.git_sha,
            "scale": self.scale,
            "build_args": self.build_args,
            "spec": self.spec,
            "plan": self.plan,
            "metrics": self.metrics,
            "registry": self.registry,
            "bottleneck": self.bottleneck,
            "wall": self.wall,
            "rewrite": self.rewrite,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        version = int(payload.get("version", 0))
        if version > MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {version} is newer than supported "
                f"({MANIFEST_VERSION}); upgrade the tooling")
        return cls(
            model=payload["model"],
            label=payload.get("label", ""),
            version=version,
            created=payload.get("created", ""),
            git_sha=payload.get("git_sha"),
            scale=payload.get("scale"),
            build_args=dict(payload.get("build_args", {})),
            spec=dict(payload.get("spec", {})),
            plan=dict(payload.get("plan", {})),
            metrics=dict(payload.get("metrics", {})),
            registry=dict(payload.get("registry", {})),
            bottleneck=dict(payload.get("bottleneck", {})),
            wall=dict(payload.get("wall", {})),
            rewrite=dict(payload.get("rewrite", {})),
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "RunManifest":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    # -- reporting -----------------------------------------------------------
    def summary(self) -> str:
        t = self.metrics.get("time", {})
        mem = self.metrics.get("memory", {})
        bound = self.bottleneck.get("run", {}).get("bound", "?")
        return (f"{self.model}{f' [{self.label}]' if self.label else ''}: "
                f"{t.get('total', 0.0) * 1e3:.3f} ms, "
                f"{mem.get('dram_txns', 0)} DRAM txns "
                f"({mem.get('dram_read_txns', 0)} r / {mem.get('dram_write_txns', 0)} w), "
                f"{self.metrics.get('num_tasks', 0)} tasks, {bound}-bound")


def manifest_from_result(
    model: str,
    result: "EngineResult",
    spec: "GPUSpec",
    label: str = "",
    scale: str | None = None,
    build_args: Mapping | None = None,
    wall: Mapping | None = None,
    rewrite: Mapping | None = None,
) -> RunManifest:
    """Build the manifest for one engine execution."""
    plan = result.plan
    registry = getattr(result, "registry", None)
    reports = {"run": attribute_run(result.metrics, spec, label=model).as_dict()}
    if result.per_subgraph:
        reports["subgraphs"] = [
            r.as_dict() for r in attribute_subgraphs(result.per_subgraph, spec, plan)
        ]
    return RunManifest(
        model=model,
        label=label,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_sha=git_sha(),
        scale=scale,
        build_args=dict(build_args or {}),
        spec=spec_dict(spec),
        plan={"digest": plan_digest(plan), "subgraphs": _plan_entries(plan)},
        metrics=_metrics_dict(result.metrics),
        registry=registry.as_dict() if registry is not None else {},
        bottleneck=reports,
        wall=dict(wall or {}),
        rewrite=dict(rewrite or {}),
    )


def manifest_from_serve(
    model: str,
    registry,
    spec: "GPUSpec",
    cached_plans: Sequence[Mapping] = (),
    serve_stats: Mapping | None = None,
    label: str = "serve",
    scale: str | None = None,
    build_args: Mapping | None = None,
) -> RunManifest:
    """Build the manifest for one serving session.

    Unlike :func:`manifest_from_result` (one engine execution), a serving
    manifest aggregates many batched executions: its ``metrics`` carry the
    serve-path rollup (request counts, latency quantiles, cache hit ratio),
    its ``plan`` lists every plan-cache entry (keyed digest + the PR-4 plan
    digest per batch bucket), and its ``registry`` is the server's registry
    dump -- so a loadgen run leaves the same kind of diffable record a
    benchmark run does.
    """
    return RunManifest(
        model=model,
        label=label,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_sha=git_sha(),
        scale=scale,
        build_args=dict(build_args or {}),
        spec=spec_dict(spec),
        plan={"cached": [dict(p) for p in cached_plans]},
        metrics={"serve": dict(serve_stats or {})},
        registry=registry.as_dict() if registry is not None else {},
        bottleneck={},
    )


def bench_manifest_path(model: str, out_dir: str | pathlib.Path = ".",
                        label: str = "") -> pathlib.Path:
    """The trajectory filename convention: ``BENCH_<model>[__<label>].json``."""
    stem = f"BENCH_{model}" + (f"__{label}" if label else "")
    return pathlib.Path(out_dir) / f"{stem}.json"
