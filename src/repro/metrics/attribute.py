"""Bottleneck attribution: classify what a run (or one subgraph) is bound by.

The paper's evaluation explains every bar with the section 4 time
derivations: DRAM time is ``N_txn / R_txn`` (4.2), compute is the modeled
SM-wave makespan, atomics cost ``T_atomic`` each (4.3.1), and the total
combines them under the memory/compute-overlap assumption (4.4).  This
module inverts those derivations: given measured counters it names the
*dominant* component -- DRAM-, compute-, atomic-, or idle-bound -- places
the execution on a roofline against the device spec, and bounds the speedup
available from eliminating the dominant component (re-deriving the total
with that component zeroed, so overlap is honored rather than Amdahl
over-promising).

"Idle" here is the *serial residual*: synchronization barriers, memo-table
bookkeeping, and recursion stalls -- time when neither the DRAM pipe nor
the SMs are the limiter.  It is reconstructed from the breakdown identities
(``total = dram + busy - hidden + overhead``) using the spec's overlap
efficiency, the same arithmetic :func:`~repro.gpusim.timing.compute_breakdown`
used forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only (avoids an import cycle:
    # gpusim.device imports repro.metrics for its registry)
    from repro.gpusim.device import RunMetrics
    from repro.gpusim.spec import GPUSpec

__all__ = ["RooflinePoint", "BottleneckReport", "attribute_run",
           "attribute_subgraphs", "attribution_table", "COMPONENTS"]

COMPONENTS = ("dram", "compute", "atomic", "idle")


@dataclass(frozen=True)
class RooflinePoint:
    """Position of an execution on the device's roofline.

    Rates are *model-effective*: the memory bandwidth is the paper's folded
    ``R_txn`` times the 32 B transaction size and the compute peak is the
    calibrated effective per-SM rate, so the ridge sits where the simulated
    breakdowns actually balance (not at datasheet peaks).
    """

    flops: float
    dram_bytes: float
    arithmetic_intensity: float   # flops / DRAM byte
    achieved_flops: float         # flops / total_time
    peak_flops: float             # num_sms * effective per-SM rate
    memory_bw: float              # effective bytes/s (R_txn * 32 B)
    attainable_flops: float       # min(peak, intensity * bw)
    ridge_intensity: float        # peak / bw: the memory/compute crossover

    @property
    def memory_bound(self) -> bool:
        return self.arithmetic_intensity < self.ridge_intensity

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in (
            "flops", "dram_bytes", "arithmetic_intensity", "achieved_flops",
            "peak_flops", "memory_bw", "attainable_flops", "ridge_intensity")}


@dataclass(frozen=True)
class BottleneckReport:
    """One execution's (or subgraph's) dominant-component classification."""

    label: str
    bound: str                    # one of COMPONENTS
    total_s: float
    components: dict[str, float]  # seconds per component (pre-overlap)
    shares: dict[str, float]      # component / total (overlap-adjusted? no:
                                  # raw fractions of total; may sum > 1)
    speedup_ceiling: float        # total / total-with-dominant-eliminated
    roofline: RooflinePoint

    def describe(self) -> str:
        parts = ", ".join(f"{k} {self.shares[k]:.0%}" for k in COMPONENTS)
        return (f"{self.label}: {self.bound}-bound ({parts}); "
                f"AI {self.roofline.arithmetic_intensity:.2f} flop/B "
                f"({'memory' if self.roofline.memory_bound else 'compute'} side "
                f"of ridge {self.roofline.ridge_intensity:.2f}); "
                f"ceiling {self.speedup_ceiling:.2f}x from removing {self.bound}")

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "bound": self.bound,
            "total_s": self.total_s,
            "components": dict(self.components),
            "shares": dict(self.shares),
            "speedup_ceiling": self.speedup_ceiling,
            "roofline": self.roofline.as_dict(),
        }


def _combine(spec: "GPUSpec", dram: float, compute: float, atomic: float,
             idle: float) -> float:
    """Forward time model (section 4.4): busy work overlaps DRAM transfers
    at the spec's overlap efficiency; the serial residual adds on top."""
    busy = compute + atomic
    hidden = spec.overlap_efficiency * min(dram, busy)
    return dram + busy - hidden + idle


def _classify(label: str, spec: "GPUSpec", dram: float, compute: float,
              atomic: float, idle: float, flops: float,
              dram_bytes: float, total_s: float | None = None) -> BottleneckReport:
    components = {"dram": dram, "compute": compute, "atomic": atomic, "idle": idle}
    total = total_s if total_s is not None else _combine(spec, dram, compute, atomic, idle)
    denom = total or 1.0
    shares = {k: v / denom for k, v in components.items()}
    bound = max(COMPONENTS, key=lambda k: components[k])
    without = dict(components)
    without[bound] = 0.0
    reduced = _combine(spec, **without)
    ceiling = total / reduced if reduced > 0 else float("inf")

    peak = spec.num_sms * spec.sm_flops
    bw = spec.txn_rate * spec.transaction_bytes
    ai = flops / dram_bytes if dram_bytes else float("inf")
    roof = RooflinePoint(
        flops=flops,
        dram_bytes=dram_bytes,
        arithmetic_intensity=ai,
        achieved_flops=flops / total if total else 0.0,
        peak_flops=peak,
        memory_bw=bw,
        attainable_flops=min(peak, ai * bw) if dram_bytes else peak,
        ridge_intensity=peak / bw if bw else float("inf"),
    )
    return BottleneckReport(label=label, bound=bound, total_s=total,
                            components=components, shares=shares,
                            speedup_ceiling=ceiling, roofline=roof)


def attribute_run(metrics: "RunMetrics", spec: "GPUSpec",
                  label: str = "run") -> BottleneckReport:
    """Classify a whole run from its :class:`RunMetrics`.

    Components come straight from the paper-derivation breakdown; the serial
    residual ("idle") is reconstructed from the identity
    ``overhead = total - dram - busy + hidden`` with
    ``hidden = overlap * min(dram, busy)`` -- the inverse of
    :func:`~repro.gpusim.timing.compute_breakdown`.
    """
    t = metrics.time
    atomic = t.atomics_compulsory + t.atomics_conflict
    busy = t.compute + atomic
    hidden = spec.overlap_efficiency * min(t.dram, busy)
    idle = max(0.0, t.total - t.dram - busy + hidden)
    return _classify(label, spec, t.dram, t.compute, atomic, idle,
                     flops=metrics.total_flops,
                     dram_bytes=float(metrics.memory.dram_bytes),
                     total_s=t.total)


def attribute_subgraphs(per_subgraph: Sequence[dict], spec: "GPUSpec",
                        plan=None) -> list[BottleneckReport]:
    """Classify each plan entry from the engine's per-subgraph attribution
    rows (``EngineResult.per_subgraph``).

    Per-subgraph compute time is the balanced-makespan estimate
    ``busy_s / num_sms`` (exact per-task durations summed over the plan
    entry, spread over the SMs); DRAM time is the entry's transactions over
    ``R_txn``; atomics at ``T_atomic`` each; the idle residual is the
    entry's measured scheduler overhead plus its synchronizations.
    """
    reports = []
    for index, row in enumerate(per_subgraph):
        if plan is not None and index < len(plan.subgraphs):
            sub = plan.subgraphs[index]
            label = f"subgraph {index} ({sub.strategy.value})"
        else:
            label = f"subgraph {index}"
        dram = row.get("dram_time_s", row.get("dram_txns", 0) / spec.txn_rate)
        compute = row.get("busy_s", 0.0) / max(1, spec.num_sms)
        if not compute:
            # Older rows without busy_s: rebuild from flops + per-task overhead.
            compute = (row.get("num_tasks", 0) * spec.call_overhead_s
                       + row.get("flops", 0.0) / spec.sm_flops) / max(1, spec.num_sms)
        atomic = (row.get("atomics_compulsory", 0)
                  + row.get("atomics_conflict", 0)) * spec.atomic_time_s
        idle = row.get("overhead_s", 0.0) + row.get("syncs", 0) * spec.sync_time_s
        reports.append(_classify(
            label, spec, dram, compute, atomic, idle,
            flops=row.get("flops", 0.0),
            dram_bytes=row.get("dram_txns", 0) * spec.transaction_bytes,
        ))
    return reports


def attribution_table(reports: Sequence[BottleneckReport],
                      title: str = "bottleneck attribution") -> str:
    """Render reports as the harness's fixed-width table."""
    from repro.bench.reporting import format_table

    rows = []
    for r in reports:
        rows.append([
            r.label, r.bound,
            f"{r.total_s * 1e3:.3f}",
            *(f"{r.shares[k]:.0%}" for k in COMPONENTS),
            f"{r.roofline.arithmetic_intensity:.2f}",
            "mem" if r.roofline.memory_bound else "comp",
            f"{r.speedup_ceiling:.2f}x",
        ])
    return format_table(
        ["what", "bound", "total ms", "dram", "compute", "atomic", "idle",
         "AI", "roofline", "ceiling"],
        rows, title=title)
