"""The seven CNN models of the paper's evaluation (section 4.2).

(i) VGG-16, (ii) ResNet-50 (identity + projection skips), (iii) DarkNet-53
(YOLOv3 backbone), (iv) 3D ResNet-34, (v) DRN-26 (dilated residual network,
DRN-C), (vi) DeepCAM (encoder-decoder with deconvolutions and ASPP), and
(vii) InceptionNet-v4.

Every builder accepts the full paper-scale configuration by default and a
reduced configuration (smaller spatial extents / channel widths) for
functional tests, since the NumPy kernels compute real values.

Use :func:`repro.models.zoo.build` / :data:`repro.models.zoo.MODELS` for
name-based access.
"""

from repro.models.vgg import build_vgg16
from repro.models.resnet import build_resnet50
from repro.models.darknet import build_darknet53
from repro.models.resnet3d import build_resnet3d34
from repro.models.drn import build_drn26
from repro.models.deepcam import build_deepcam
from repro.models.inception import build_inception_v4
from repro.models.mobilenet import build_mobilenet_v1
from repro.models.zoo import MODELS, build

__all__ = [
    "build_vgg16",
    "build_resnet50",
    "build_darknet53",
    "build_resnet3d34",
    "build_drn26",
    "build_deepcam",
    "build_inception_v4",
    "build_mobilenet_v1",
    "MODELS",
    "build",
]
