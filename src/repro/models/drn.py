"""DRN-26 -- Dilated Residual Network, DRN-C variant (Yu et al., 2017).

Keeps spatial resolution in the last two stages by replacing stride with
dilation (rates 2 and 4), and appends the DRN-C "degridding" stages: plain
(non-residual) dilated-then-undilated conv blocks that remove gridding
artifacts.  Exercises merged execution over *dilated, strided* convolutions
whose halos grow with the dilation rate.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.models.common import image_builder, scaled

__all__ = ["build_drn26"]


def _basic_block(b: GraphBuilder, channels: int, stride: int, dilation: int,
                 project: bool, prefix: str) -> Node:
    identity = b.current
    pad = dilation  # same-padding for a 3x3 kernel at this dilation
    b.conv(channels, 3, stride=stride, padding=pad, dilation=dilation, bias=False, name=f"{prefix}/conv1")
    b.batchnorm(name=f"{prefix}/bn1")
    b.relu(name=f"{prefix}/relu1")
    x = b.conv(channels, 3, padding=pad, dilation=dilation, bias=False, name=f"{prefix}/conv2")
    x = b.batchnorm(name=f"{prefix}/bn2")
    if project:
        skip = b.conv(channels, 1, stride=stride, bias=False, src=identity, name=f"{prefix}/proj")
        skip = b.batchnorm(src=skip, name=f"{prefix}/proj_bn")
    else:
        skip = identity
    x = b.add(x, skip, name=f"{prefix}/add")
    return b.relu(src=x, name=f"{prefix}/relu_out")


def _plain_block(b: GraphBuilder, channels: int, dilation: int, prefix: str) -> Node:
    pad = dilation
    b.conv(channels, 3, padding=pad, dilation=dilation, bias=False, name=f"{prefix}/conv")
    b.batchnorm(name=f"{prefix}/bn")
    return b.relu(name=f"{prefix}/relu")


def build_drn26(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    batch: int = 1,
) -> Graph:
    b = image_builder("drn26", (image_size, image_size), batch=batch)
    c16, c32 = scaled(16, width_scale), scaled(32, width_scale)
    c64, c128 = scaled(64, width_scale), scaled(128, width_scale)
    c256, c512 = scaled(256, width_scale), scaled(512, width_scale)

    # Stem: two conv units, stride 2 at the second (DRN replaces max pool).
    b.conv(c16, 7, padding=3, bias=False, name="stem/conv")
    b.batchnorm(name="stem/bn")
    b.relu(name="stem/relu")
    _basic_block(b, c16, 1, 1, project=True, prefix="level1")
    _basic_block(b, c32, 2, 1, project=True, prefix="level2")

    # Residual stages: stride in 3/4, dilation instead of stride in 5/6.
    _basic_block(b, c64, 2, 1, project=True, prefix="level3/block1")
    _basic_block(b, c64, 1, 1, project=False, prefix="level3/block2")
    _basic_block(b, c128, 2, 1, project=True, prefix="level4/block1")
    _basic_block(b, c128, 1, 1, project=False, prefix="level4/block2")
    _basic_block(b, c256, 1, 2, project=True, prefix="level5/block1")
    _basic_block(b, c256, 1, 2, project=False, prefix="level5/block2")
    _basic_block(b, c512, 1, 4, project=True, prefix="level6/block1")
    _basic_block(b, c512, 1, 4, project=False, prefix="level6/block2")

    # DRN-C degridding: plain blocks with decreasing dilation.
    _plain_block(b, c512, 2, "level7")
    _plain_block(b, c512, 1, "level8")

    b.classifier(num_classes)
    b.graph.validate()
    return b.graph
