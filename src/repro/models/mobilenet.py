"""MobileNetV1 (Howard et al., 2017) -- depthwise-separable convolutions.

Not one of the paper's seven, but section 3.2 names "depthwise/spatially
separable" convolutions among the operations compatible with merged
execution; this model exercises that claim end-to-end: every block is a
depthwise 3x3 (grouped conv, groups == channels) followed by a pointwise
1x1, each with BN + ReLU.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.models.common import image_builder, scaled

__all__ = ["build_mobilenet_v1"]

# (out_channels, stride) per depthwise-separable block.
_BLOCKS = ((64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
           (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1))


def _dw_separable(b: GraphBuilder, out_channels: int, stride: int, prefix: str) -> Node:
    in_channels = b.current.spec.channels
    b.conv(in_channels, 3, stride=stride, padding=1, groups=in_channels,
           bias=False, name=f"{prefix}/dw")
    b.batchnorm(name=f"{prefix}/dw_bn")
    b.relu(name=f"{prefix}/dw_relu")
    b.conv(out_channels, 1, bias=False, name=f"{prefix}/pw")
    b.batchnorm(name=f"{prefix}/pw_bn")
    return b.relu(name=f"{prefix}/pw_relu")


def build_mobilenet_v1(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    blocks: tuple = _BLOCKS,
    batch: int = 1,
) -> Graph:
    b = image_builder("mobilenet_v1", (image_size, image_size), batch=batch)
    b.conv(scaled(32, width_scale), 3, stride=2, padding=1, bias=False, name="stem/conv")
    b.batchnorm(name="stem/bn")
    b.relu(name="stem/relu")
    for i, (channels, stride) in enumerate(blocks, start=1):
        _dw_separable(b, scaled(channels, width_scale), stride, f"block{i}")
    b.classifier(num_classes)
    b.graph.validate()
    return b.graph
