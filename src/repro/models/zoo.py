"""Name-based registry over the model zoo.

``build(name)`` gives the paper-scale model; ``build(name, reduced=True)``
gives a small configuration suitable for functional (NumPy-computed) tests
and examples.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.graph.ir import Graph
from repro.models.darknet import build_darknet53
from repro.models.deepcam import build_deepcam
from repro.models.drn import build_drn26
from repro.models.inception import build_inception_v4
from repro.models.mobilenet import build_mobilenet_v1
from repro.models.resnet import build_resnet50, build_resnet101
from repro.models.resnet3d import build_resnet3d34
from repro.models.vgg import build_vgg16, build_vgg19

__all__ = ["MODELS", "build", "REDUCED_KWARGS"]

MODELS: dict[str, Callable[..., Graph]] = {
    "vgg16": build_vgg16,
    "resnet50": build_resnet50,
    "darknet53": build_darknet53,
    "resnet3d34": build_resnet3d34,
    "drn26": build_drn26,
    "deepcam": build_deepcam,
    "inception_v4": build_inception_v4,
    # Deeper variants (not in the paper's seven; for the depth ablation).
    "resnet101": build_resnet101,
    "vgg19": build_vgg19,
    "mobilenet_v1": build_mobilenet_v1,
}

# Small-but-structurally-faithful configurations for functional testing.
REDUCED_KWARGS: dict[str, dict] = {
    "vgg16": {"image_size": 64, "width_scale": 0.125, "fc_width": 256, "num_classes": 10},
    "resnet50": {"image_size": 64, "width_scale": 0.25, "num_classes": 10},
    "darknet53": {"image_size": 64, "width_scale": 0.125, "stage_blocks": (1, 1, 2, 2, 1),
                  "num_classes": 10},
    "resnet3d34": {"clip": (8, 32, 32), "width_scale": 0.25, "stage_blocks": (1, 1, 2, 1),
                   "num_classes": 10},
    "drn26": {"image_size": 64, "width_scale": 0.25, "num_classes": 10},
    "deepcam": {"image_size": 64, "width_scale": 0.25, "in_channels": 4, "num_classes": 3},
    "inception_v4": {"image_size": 64, "width_scale": 0.125, "module_counts": (1, 1, 1),
                     "num_classes": 10},
    "resnet101": {"image_size": 64, "width_scale": 0.25, "num_classes": 10},
    "vgg19": {"image_size": 64, "width_scale": 0.125, "fc_width": 256, "num_classes": 10},
    "mobilenet_v1": {"image_size": 64, "width_scale": 0.25,
                     "blocks": ((64, 1), (128, 2), (128, 1), (256, 2)), "num_classes": 10},
}


def build(name: str, reduced: bool = False, **kwargs) -> Graph:
    """Build a zoo model by name; ``reduced`` selects the test-scale config."""
    if name not in MODELS:
        raise ReproError(f"unknown model {name!r}; choose from {sorted(MODELS)}")
    base = dict(REDUCED_KWARGS[name]) if reduced else {}
    base.update(kwargs)
    return MODELS[name](**base)
