"""DarkNet-53, the YOLOv3 backbone (Redmon & Farhadi, 2018).

Alternating 1x1/3x3 convolutions with residual connections and leaky-ReLU
activations, downsampling with strided 3x3 convolutions (no pooling).  The
deepest plain-conv chain among the evaluated models -- the paper's best case
for merged execution (17.4 % over cuDNN, Fig. 7).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.models.common import image_builder, scaled

__all__ = ["build_darknet53"]

# (channels, residual block count) per downsampling stage.
_STAGES = ((64, 1), (128, 2), (256, 8), (512, 8), (1024, 4))


def _conv_unit(b: GraphBuilder, channels: int, kernel: int, stride: int, name: str) -> Node:
    pad = (kernel - 1) // 2
    b.conv(channels, kernel, stride=stride, padding=pad, bias=False, name=f"{name}/conv")
    b.batchnorm(name=f"{name}/bn")
    return b.leaky_relu(slope=0.1, name=f"{name}/lrelu")


def _residual(b: GraphBuilder, channels: int, name: str) -> Node:
    identity = b.current
    _conv_unit(b, channels // 2, 1, 1, f"{name}/reduce")
    x = _conv_unit(b, channels, 3, 1, f"{name}/expand")
    x = b.add(x, identity, name=f"{name}/add")
    return x


def build_darknet53(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    stage_blocks: tuple[int, ...] = (1, 2, 8, 8, 4),
    batch: int = 1,
) -> Graph:
    b = image_builder("darknet53", (image_size, image_size), batch=batch)
    _conv_unit(b, scaled(32, width_scale), 3, 1, "stem")
    for si, ((channels, _), blocks) in enumerate(zip(_STAGES, stage_blocks), start=1):
        c = scaled(channels, width_scale)
        _conv_unit(b, c, 3, 2, f"stage{si}/down")
        for bi in range(1, blocks + 1):
            _residual(b, c, f"stage{si}/res{bi}")
    b.classifier(num_classes)
    b.graph.validate()
    return b.graph
