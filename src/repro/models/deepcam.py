"""DeepCAM -- climate-segmentation network (Kurth et al., SC'18).

Encoder-decoder segmentation architecture: a strided-convolution encoder, an
ASPP (atrous/asymmetric spatial pyramid pooling) bottleneck of parallel
dilated convolutions concatenated channel-wise, and a transposed-convolution
decoder restoring full resolution for the per-pixel class map.  Exercises
the two operator types unique to this model in the paper's mix:
deconvolutions (transposed convs) and multi-rate dilated branches.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.models.common import scaled
from repro.graph.tensorspec import TensorSpec

__all__ = ["build_deepcam"]


def _enc_block(b: GraphBuilder, channels: int, stride: int, prefix: str) -> Node:
    b.conv(channels, 3, stride=stride, padding=1, bias=False, name=f"{prefix}/conv")
    b.batchnorm(name=f"{prefix}/bn")
    return b.relu(name=f"{prefix}/relu")


def build_deepcam(
    image_size: int = 192,
    in_channels: int = 16,
    num_classes: int = 3,
    width_scale: float = 1.0,
    aspp_rates: tuple[int, ...] = (1, 2, 4),
    batch: int = 1,
) -> Graph:
    """DeepCAM-style segmenter.

    The real DeepCAM consumes 16-channel climate fields (768x1152); the
    default here keeps the channel structure with a GPU-friendly square
    input.  ``num_classes`` per-pixel classes (background / TC / AR).
    """
    b = GraphBuilder("deepcam", TensorSpec(batch, in_channels, (image_size, image_size)))
    c64 = scaled(64, width_scale)
    c128 = scaled(128, width_scale)
    c256 = scaled(256, width_scale)

    # Encoder: 1/2 -> 1/4 -> 1/8 resolution.
    _enc_block(b, c64, 1, "enc1a")
    _enc_block(b, c64, 2, "enc1b")
    _enc_block(b, c128, 1, "enc2a")
    _enc_block(b, c128, 2, "enc2b")
    _enc_block(b, c256, 1, "enc3a")
    bottom = _enc_block(b, c256, 2, "enc3b")

    # ASPP: parallel dilated 3x3 branches + 1x1 branch, concatenated.
    branches = []
    b.conv(c64, 1, bias=False, src=bottom, name="aspp/point")
    b.batchnorm(name="aspp/point_bn")
    branches.append(b.relu(name="aspp/point_relu"))
    for rate in aspp_rates:
        b.conv(c64, 3, padding=rate, dilation=rate, bias=False, src=bottom, name=f"aspp/rate{rate}")
        b.batchnorm(name=f"aspp/rate{rate}_bn")
        branches.append(b.relu(name=f"aspp/rate{rate}_relu"))
    b.concat(branches, name="aspp/concat")
    b.conv(c256, 1, bias=False, name="aspp/fuse")
    b.batchnorm(name="aspp/fuse_bn")
    b.relu(name="aspp/fuse_relu")

    # Decoder: three stride-2 deconvolutions back to full resolution.
    b.deconv(c128, 4, stride=2, padding=1, name="dec1/deconv")
    b.batchnorm(name="dec1/bn")
    b.relu(name="dec1/relu")
    b.deconv(c64, 4, stride=2, padding=1, name="dec2/deconv")
    b.batchnorm(name="dec2/bn")
    b.relu(name="dec2/relu")
    b.deconv(c64, 4, stride=2, padding=1, name="dec3/deconv")
    b.batchnorm(name="dec3/bn")
    b.relu(name="dec3/relu")

    # Per-pixel classifier head.
    b.conv(num_classes, 1, name="head/conv")
    b.softmax(name="head/softmax")
    return b.finish()
