"""Shared helpers for the model zoo."""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec

__all__ = ["image_builder", "scaled"]


def scaled(channels: int, width_scale: float) -> int:
    """Scale a channel width, keeping at least 1 channel."""
    return max(1, int(round(channels * width_scale)))


def image_builder(
    name: str,
    spatial: tuple[int, ...],
    in_channels: int = 3,
    batch: int = 1,
) -> GraphBuilder:
    return GraphBuilder(name, TensorSpec(batch, in_channels, spatial))
