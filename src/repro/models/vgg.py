"""VGG-16 (Simonyan & Zisserman, 2014).

Thirteen 3x3 convolutions in five stages separated by 2x2 max pools, then
the three-layer fully connected classifier.  The long unbroken chains of
same-shape convolutions make VGG the cleanest showcase of merged execution
across back-to-back compute-intensive operators.
"""

from __future__ import annotations

from repro.graph.ir import Graph
from repro.models.common import image_builder, scaled

__all__ = ["build_vgg16", "build_vgg19"]

_STAGES = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))
_STAGES_19 = ((64, 2), (128, 2), (256, 4), (512, 4), (512, 4))


def build_vgg16(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    fc_width: int = 4096,
    batch: int = 1,
    stages: tuple = _STAGES,
    name: str = "vgg16",
) -> Graph:
    """Build VGG-16; ``width_scale`` shrinks channel widths for tests."""
    b = image_builder(name, (image_size, image_size), batch=batch)
    for si, (channels, reps) in enumerate(stages, start=1):
        c = scaled(channels, width_scale)
        for ri in range(1, reps + 1):
            b.conv(c, 3, padding=1, name=f"conv{si}_{ri}")
            b.relu(name=f"relu{si}_{ri}")
        b.maxpool(2, name=f"pool{si}")

    b.flatten(name="flatten")
    b.dense(scaled(fc_width, width_scale), name="fc6")
    b.relu(name="relu6")
    b.dense(scaled(fc_width, width_scale), name="fc7")
    b.relu(name="relu7")
    b.dense(num_classes, name="fc8")
    b.softmax(name="softmax")
    return b.finish()


def build_vgg19(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    fc_width: int = 4096,
    batch: int = 1,
) -> Graph:
    """VGG-19: the 16-conv variant (longer unbroken conv chains to merge)."""
    return build_vgg16(image_size=image_size, num_classes=num_classes,
                       width_scale=width_scale, fc_width=fc_width, batch=batch,
                       stages=_STAGES_19, name="vgg19")
