"""ResNet-50 (He et al., 2016) with identity and projection skips.

Stem (7x7/2 conv + 3x3/2 max pool) followed by four stages of bottleneck
blocks [3, 4, 6, 3]; the first block of each stage uses a strided projection
shortcut, the rest identity shortcuts.  The residual adds are the pointwise
ops the conventional baselines fuse; the 1x1-3x3-1x1 conv chains are what
BrickDL merges.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.models.common import image_builder, scaled

__all__ = ["build_resnet50", "build_resnet101", "bottleneck"]

_EXPANSION = 4


def bottleneck(
    b: GraphBuilder,
    inner: int,
    stride: int,
    project: bool,
    prefix: str,
) -> Node:
    """One 1x1 -> 3x3 -> 1x1 bottleneck with skip connection."""
    identity = b.current
    x = b.conv(inner, 1, stride=1, bias=False, name=f"{prefix}/conv1")
    x = b.batchnorm(name=f"{prefix}/bn1")
    x = b.relu(name=f"{prefix}/relu1")
    x = b.conv(inner, 3, stride=stride, padding=1, bias=False, name=f"{prefix}/conv2")
    x = b.batchnorm(name=f"{prefix}/bn2")
    x = b.relu(name=f"{prefix}/relu2")
    x = b.conv(inner * _EXPANSION, 1, bias=False, name=f"{prefix}/conv3")
    x = b.batchnorm(name=f"{prefix}/bn3")
    if project:
        skip = b.conv(inner * _EXPANSION, 1, stride=stride, bias=False,
                      src=identity, name=f"{prefix}/proj")
        skip = b.batchnorm(src=skip, name=f"{prefix}/proj_bn")
    else:
        skip = identity
    x = b.add(x, skip, name=f"{prefix}/add")
    return b.relu(src=x, name=f"{prefix}/relu_out")


def build_resnet50(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    stage_blocks: tuple[int, int, int, int] = (3, 4, 6, 3),
    batch: int = 1,
) -> Graph:
    b = image_builder("resnet50", (image_size, image_size), batch=batch)
    stem = scaled(64, width_scale)
    b.conv(stem, 7, stride=2, padding=3, bias=False, name="stem/conv")
    b.batchnorm(name="stem/bn")
    b.relu(name="stem/relu")
    b.maxpool(3, stride=2, padding=1, name="stem/pool")

    widths = (64, 128, 256, 512)
    for si, (width, blocks) in enumerate(zip(widths, stage_blocks), start=1):
        inner = scaled(width, width_scale)
        for bi in range(1, blocks + 1):
            stride = 2 if (si > 1 and bi == 1) else 1
            project = bi == 1  # stage entry always re-projects channels
            bottleneck(b, inner, stride, project, prefix=f"stage{si}/block{bi}")

    b.classifier(num_classes)
    b.graph.validate()
    return b.graph


def build_resnet101(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    batch: int = 1,
) -> Graph:
    """ResNet-101: the same bottleneck architecture with stages (3, 4, 23, 3).

    The paper observes that "deeper models benefit even better from BrickDL,
    with the ability to merge layers in more subgraphs" -- this variant lets
    that claim be tested directly against ResNet-50.
    """
    g = build_resnet50(image_size=image_size, num_classes=num_classes,
                       width_scale=width_scale, stage_blocks=(3, 4, 23, 3), batch=batch)
    g.name = "resnet101"
    return g
