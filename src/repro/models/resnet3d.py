"""3D ResNet-34 for spatio-temporal action recognition (Hara et al., 2017).

Basic residual blocks of two 3x3x3 convolutions over 5-D activations
``(N, C, D, H, W)``; the first stage keeps resolution, later stages
downsample with stride 2 in all three spatial dims.  Exercises BrickDL's
3-D bricks (the paper's microbenchmarks also use 3-D convolutions).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.models.common import scaled
from repro.graph.tensorspec import TensorSpec

__all__ = ["build_resnet3d34"]


def _basic_block(b: GraphBuilder, channels: int, stride: int, project: bool, prefix: str) -> Node:
    identity = b.current
    b.conv(channels, 3, stride=stride, padding=1, bias=False, name=f"{prefix}/conv1")
    b.batchnorm(name=f"{prefix}/bn1")
    b.relu(name=f"{prefix}/relu1")
    x = b.conv(channels, 3, padding=1, bias=False, name=f"{prefix}/conv2")
    x = b.batchnorm(name=f"{prefix}/bn2")
    if project:
        skip = b.conv(channels, 1, stride=stride, bias=False, src=identity, name=f"{prefix}/proj")
        skip = b.batchnorm(src=skip, name=f"{prefix}/proj_bn")
    else:
        skip = identity
    x = b.add(x, skip, name=f"{prefix}/add")
    return b.relu(src=x, name=f"{prefix}/relu_out")


def build_resnet3d34(
    clip: tuple[int, int, int] = (16, 112, 112),
    num_classes: int = 400,
    width_scale: float = 1.0,
    stage_blocks: tuple[int, int, int, int] = (3, 4, 6, 3),
    batch: int = 1,
) -> Graph:
    """``clip`` is the input ``(frames, height, width)``."""
    b = GraphBuilder("resnet3d34", TensorSpec(batch, 3, clip))
    stem = scaled(64, width_scale)
    b.conv(stem, (3, 7, 7), stride=(1, 2, 2), padding=(1, 3, 3), bias=False, name="stem/conv")
    b.batchnorm(name="stem/bn")
    b.relu(name="stem/relu")
    b.maxpool((3, 3, 3), stride=(2, 2, 2), padding=1, name="stem/pool")

    widths = (64, 128, 256, 512)
    for si, (width, blocks) in enumerate(zip(widths, stage_blocks), start=1):
        c = scaled(width, width_scale)
        for bi in range(1, blocks + 1):
            stride = 2 if (si > 1 and bi == 1) else 1
            project = bi == 1 and si > 1
            _basic_block(b, c, stride, project, f"stage{si}/block{bi}")

    b.classifier(num_classes)
    b.graph.validate()
    return b.graph
