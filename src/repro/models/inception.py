"""InceptionNet-v4 (Szegedy et al., 2017).

Multi-branch Inception-A/B/C modules with channel concatenation, separated
by reduction modules.  Branches use factorized (1x7 / 7x1) convolutions in
the B modules.  The branchy, concat-heavy structure stresses the
partitioner's handling of DAG subgraphs (multiple entries/exits per merged
region).

The module counts follow the paper's architecture (4 x A, 7 x B, 3 x C) but
are configurable so functional tests can run a slimmer network.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.models.common import image_builder, scaled

__all__ = ["build_inception_v4"]


def _cbr(b: GraphBuilder, channels: int, kernel, stride=1, padding=0, src=None, name="cbr") -> Node:
    b.conv(channels, kernel, stride=stride, padding=padding, bias=False, src=src, name=f"{name}/conv")
    b.batchnorm(name=f"{name}/bn")
    return b.relu(name=f"{name}/relu")


def _stem(b: GraphBuilder, s: float) -> Node:
    _cbr(b, scaled(32, s), 3, stride=2, padding=1, name="stem/conv1")
    _cbr(b, scaled(32, s), 3, padding=1, name="stem/conv2")
    x = _cbr(b, scaled(64, s), 3, padding=1, name="stem/conv3")
    # Mixed downsample: max pool branch || strided conv branch.
    pool = b.maxpool(3, stride=2, padding=1, src=x, name="stem/pool")
    conv = _cbr(b, scaled(96, s), 3, stride=2, padding=1, src=x, name="stem/conv4")
    return b.concat([pool, conv], name="stem/concat")


def _inception_a(b: GraphBuilder, src: Node, s: float, name: str) -> Node:
    b1 = _cbr(b, scaled(96, s), 1, src=src, name=f"{name}/b1")
    b2 = _cbr(b, scaled(64, s), 1, src=src, name=f"{name}/b2a")
    b2 = _cbr(b, scaled(96, s), 3, padding=1, src=b2, name=f"{name}/b2b")
    b3 = _cbr(b, scaled(64, s), 1, src=src, name=f"{name}/b3a")
    b3 = _cbr(b, scaled(96, s), 3, padding=1, src=b3, name=f"{name}/b3b")
    b3 = _cbr(b, scaled(96, s), 3, padding=1, src=b3, name=f"{name}/b3c")
    b4 = b.avgpool(3, stride=1, padding=1, src=src, name=f"{name}/b4pool")
    b4 = _cbr(b, scaled(96, s), 1, src=b4, name=f"{name}/b4")
    return b.concat([b1, b2, b3, b4], name=f"{name}/concat")


def _reduction_a(b: GraphBuilder, src: Node, s: float, name: str) -> Node:
    b1 = b.maxpool(3, stride=2, padding=1, src=src, name=f"{name}/pool")
    b2 = _cbr(b, scaled(384, s), 3, stride=2, padding=1, src=src, name=f"{name}/b2")
    b3 = _cbr(b, scaled(192, s), 1, src=src, name=f"{name}/b3a")
    b3 = _cbr(b, scaled(224, s), 3, padding=1, src=b3, name=f"{name}/b3b")
    b3 = _cbr(b, scaled(256, s), 3, stride=2, padding=1, src=b3, name=f"{name}/b3c")
    return b.concat([b1, b2, b3], name=f"{name}/concat")


def _inception_b(b: GraphBuilder, src: Node, s: float, name: str) -> Node:
    b1 = _cbr(b, scaled(384, s), 1, src=src, name=f"{name}/b1")
    b2 = _cbr(b, scaled(192, s), 1, src=src, name=f"{name}/b2a")
    b2 = _cbr(b, scaled(224, s), (1, 7), padding=(0, 3), src=b2, name=f"{name}/b2b")
    b2 = _cbr(b, scaled(256, s), (7, 1), padding=(3, 0), src=b2, name=f"{name}/b2c")
    b3 = _cbr(b, scaled(192, s), 1, src=src, name=f"{name}/b3a")
    b3 = _cbr(b, scaled(224, s), (7, 1), padding=(3, 0), src=b3, name=f"{name}/b3b")
    b3 = _cbr(b, scaled(256, s), (1, 7), padding=(0, 3), src=b3, name=f"{name}/b3c")
    b4 = b.avgpool(3, stride=1, padding=1, src=src, name=f"{name}/b4pool")
    b4 = _cbr(b, scaled(128, s), 1, src=b4, name=f"{name}/b4")
    return b.concat([b1, b2, b3, b4], name=f"{name}/concat")


def _reduction_b(b: GraphBuilder, src: Node, s: float, name: str) -> Node:
    b1 = b.maxpool(3, stride=2, padding=1, src=src, name=f"{name}/pool")
    b2 = _cbr(b, scaled(192, s), 1, src=src, name=f"{name}/b2a")
    b2 = _cbr(b, scaled(192, s), 3, stride=2, padding=1, src=b2, name=f"{name}/b2b")
    b3 = _cbr(b, scaled(256, s), 1, src=src, name=f"{name}/b3a")
    b3 = _cbr(b, scaled(320, s), (7, 1), padding=(3, 0), src=b3, name=f"{name}/b3b")
    b3 = _cbr(b, scaled(320, s), 3, stride=2, padding=1, src=b3, name=f"{name}/b3c")
    return b.concat([b1, b2, b3], name=f"{name}/concat")


def _inception_c(b: GraphBuilder, src: Node, s: float, name: str) -> Node:
    b1 = _cbr(b, scaled(256, s), 1, src=src, name=f"{name}/b1")
    b2 = _cbr(b, scaled(384, s), 1, src=src, name=f"{name}/b2a")
    b2a = _cbr(b, scaled(256, s), (1, 3), padding=(0, 1), src=b2, name=f"{name}/b2b")
    b2b = _cbr(b, scaled(256, s), (3, 1), padding=(1, 0), src=b2, name=f"{name}/b2c")
    b3 = _cbr(b, scaled(384, s), 1, src=src, name=f"{name}/b3a")
    b3 = _cbr(b, scaled(448, s), (3, 1), padding=(1, 0), src=b3, name=f"{name}/b3b")
    b3 = _cbr(b, scaled(512, s), (1, 3), padding=(0, 1), src=b3, name=f"{name}/b3c")
    b3a = _cbr(b, scaled(256, s), (1, 3), padding=(0, 1), src=b3, name=f"{name}/b3d")
    b3b = _cbr(b, scaled(256, s), (3, 1), padding=(1, 0), src=b3, name=f"{name}/b3e")
    b4 = b.avgpool(3, stride=1, padding=1, src=src, name=f"{name}/b4pool")
    b4 = _cbr(b, scaled(256, s), 1, src=b4, name=f"{name}/b4")
    return b.concat([b1, b2a, b2b, b3a, b3b, b4], name=f"{name}/concat")


def build_inception_v4(
    image_size: int = 224,
    num_classes: int = 1000,
    width_scale: float = 1.0,
    module_counts: tuple[int, int, int] = (4, 7, 3),
    batch: int = 1,
) -> Graph:
    b = image_builder("inception_v4", (image_size, image_size), batch=batch)
    x = _stem(b, width_scale)
    na, nb, nc = module_counts
    for i in range(1, na + 1):
        x = _inception_a(b, x, width_scale, f"incA{i}")
    x = _reduction_a(b, x, width_scale, "redA")
    for i in range(1, nb + 1):
        x = _inception_b(b, x, width_scale, f"incB{i}")
    x = _reduction_b(b, x, width_scale, "redB")
    for i in range(1, nc + 1):
        x = _inception_c(b, x, width_scale, f"incC{i}")
    b.classifier(num_classes, src=x)
    b.graph.validate()
    return b.graph
