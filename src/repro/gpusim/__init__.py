"""Simulated GPU substrate (A100-class) for the BrickDL reproduction.

The paper's entire evaluation is expressed in terms of hardware counters
(L1/L2/DRAM transactions, atomic transactions from Nsight Compute) and times
derived from them (``T_DRAM = N_txn / R_txn``, modeled atomic and compute
time, sections 4.2-4.3).  This subpackage reproduces that measurement
apparatus in simulation:

* :mod:`repro.gpusim.spec` -- device parameter presets (A100 default),
* :mod:`repro.gpusim.trace` -- byte-range access records and tasks,
* :mod:`repro.gpusim.cache` -- sector-granular LRU caches,
* :mod:`repro.gpusim.memory` -- L1 -> L2 -> DRAM transaction accounting,
* :mod:`repro.gpusim.atomics` -- atomic CAS cost accounting,
* :mod:`repro.gpusim.timing` -- the cost model producing the paper's
  Idle / DRAM / Compute / Atomics / Other breakdown,
* :mod:`repro.gpusim.device` -- the Device facade executors run against.
"""

from repro.gpusim.spec import GPUSpec, A100
from repro.gpusim.trace import Access, Task, Buffer
from repro.gpusim.memory import MemorySystem, MemoryCounters
from repro.gpusim.atomics import AtomicCounters
from repro.gpusim.timing import TimeBreakdown, compute_breakdown
from repro.gpusim.device import Device, RunMetrics

__all__ = [
    "GPUSpec",
    "A100",
    "Access",
    "Task",
    "Buffer",
    "MemorySystem",
    "MemoryCounters",
    "AtomicCounters",
    "TimeBreakdown",
    "compute_breakdown",
    "Device",
    "RunMetrics",
]
