"""The scalar/vectorized simulator-path switch.

The memory system has two counter-identical implementations of per-task
accounting: the original per-access scalar walk (:meth:`MemorySystem.process`,
kept as the oracle) and the batched fast path
(:meth:`MemorySystem.process_batch`, the default).  ``REPRO_SIM_PATH``
selects between them:

* ``REPRO_SIM_PATH=scalar``     -- per-access oracle walk,
* ``REPRO_SIM_PATH=vectorized`` -- batched classification + signature memo
  (the default when the variable is unset).

The equivalence tests run the same workload under both values and assert
bit-identical counters; CI does the same at manifest granularity.
"""

from __future__ import annotations

import os

__all__ = ["SCALAR", "VECTORIZED", "active_path"]

SCALAR = "scalar"
VECTORIZED = "vectorized"

_ENV_VAR = "REPRO_SIM_PATH"


def active_path(override: str | None = None) -> str:
    """Resolve the simulator path: explicit override > env var > default."""
    raw = override if override is not None else os.environ.get(_ENV_VAR)
    if raw is None or raw == "":
        return VECTORIZED
    value = raw.strip().lower()
    if value not in (SCALAR, VECTORIZED):
        raise ValueError(
            f"invalid {_ENV_VAR}={raw!r}: expected {SCALAR!r} or {VECTORIZED!r}")
    return value
