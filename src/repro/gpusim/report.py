"""Profiler-style text reports from run metrics.

Formats a :class:`~repro.gpusim.device.RunMetrics` the way the paper reads
Nsight Compute: transaction counters per memory level, atomic transactions,
and the derived time breakdown (DRAM time via ``N_txn / R_txn``, modeled
compute/atomic time, Idle and Other residuals).
"""

from __future__ import annotations

from repro.gpusim.device import RunMetrics
from repro.gpusim.spec import GPUSpec

__all__ = ["profile_report"]


def _fmt_txns(n: int) -> str:
    if n >= 10 ** 9:
        return f"{n / 1e9:.2f}G"
    if n >= 10 ** 6:
        return f"{n / 1e6:.2f}M"
    if n >= 10 ** 3:
        return f"{n / 1e3:.1f}K"
    return str(n)


def profile_report(metrics: RunMetrics, spec: GPUSpec, title: str = "run") -> str:
    """A compact Nsight-like profile of one simulated execution."""
    m, a, t = metrics.memory, metrics.atomics, metrics.time
    # Zero-duration runs (empty graphs, pure-allocation tests) get a unit
    # denominator so every share reads 0.0% instead of dividing by zero; the
    # report says so explicitly rather than printing misleading percentages.
    zero_duration = not t.total
    total = t.total or 1.0
    atomics_time = t.atomics_compulsory + t.atomics_conflict
    lines = [
        f"== profile: {title} ({spec.name}) ==",
        f"  kernel invocations (tasks) ... {metrics.num_tasks}",
        f"  floating point ops ........... {metrics.total_flops / 1e9:.3f} GFLOP",
        "",
        "  memory transactions (32 B):",
        f"    global (L1) ................ {_fmt_txns(m.l1_txns)}",
        f"    L2 ......................... {_fmt_txns(m.l2_txns)}",
        f"    DRAM read / write .......... {_fmt_txns(m.dram_read_txns)} / {_fmt_txns(m.dram_write_txns)}",
        f"    DRAM bytes ................. {m.dram_bytes / 1e6:.2f} MB",
        "",
        "  atomic transactions:",
        f"    compulsory / conflict ...... {a.compulsory} / {a.conflict}",
        "",
        "  time breakdown (paper derivations):",
        f"    total ...................... {t.total * 1e3:9.3f} ms"
        + ("  (zero-duration run; shares below are 0 by convention)" if zero_duration else ""),
        f"    DRAM (N_txn / R_txn) ....... {t.dram * 1e3:9.3f} ms ({t.dram / total:5.1%})",
        f"    idle (total - DRAM) ........ {t.idle * 1e3:9.3f} ms ({t.idle / total:5.1%})",
        f"    compute (SM-wave model) .... {t.compute * 1e3:9.3f} ms ({t.compute / total:5.1%})",
        f"    atomics comp. / conflict ... {t.atomics_compulsory * 1e3:.3f} / {t.atomics_conflict * 1e3:.3f} ms ({atomics_time / total:5.1%})",
        f"    other (residual) ........... {t.other * 1e3:9.3f} ms ({t.other / total:5.1%})",
    ]
    return "\n".join(lines)
