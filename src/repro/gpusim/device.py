"""The Device facade: what execution strategies run against.

A :class:`Device` owns one memory system and one atomic-counter set for a
run.  Executors allocate buffers, submit :class:`~repro.gpusim.trace.Task`
objects (each task's accesses are pushed through the memory hierarchy as it
is submitted, so L2 state evolves in issue order -- the property merged
execution exploits), and finally call :meth:`finish` to obtain the
:class:`RunMetrics` with counters and the paper-style time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.atomics import AtomicCounters
from repro.gpusim.memory import MemoryCounters, MemorySystem
from repro.gpusim.spec import A100, GPUSpec
from repro.gpusim.timing import TimeBreakdown, compute_breakdown
from repro.gpusim.trace import Buffer, Task

__all__ = ["Device", "RunMetrics"]


@dataclass(frozen=True)
class RunMetrics:
    """Everything a benchmark needs about one execution."""

    memory: MemoryCounters
    atomics: AtomicCounters
    time: TimeBreakdown
    num_tasks: int
    total_flops: float

    @property
    def dram_time(self) -> float:
        return self.time.dram

    @property
    def total_time(self) -> float:
        return self.time.total


class Device:
    """A simulated GPU for the duration of one execution run."""

    def __init__(self, spec: GPUSpec = A100) -> None:
        self.spec = spec
        self.memory = MemorySystem(spec)
        self.atomics = AtomicCounters()
        self._tasks: list[Task] = []
        self._sync_count = 0
        self._extra_overhead = 0.0
        self._finished = False

    # -- buffers -------------------------------------------------------------
    def allocate(self, name: str, nbytes: int, transient: bool = False) -> Buffer:
        return self.memory.allocate(name, nbytes, transient)

    def discard(self, buffer: Buffer) -> None:
        self.memory.discard(buffer)

    # -- execution -----------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Run one fine-grained kernel invocation through the hierarchy."""
        self.memory.begin_task()
        for access in task.accesses:
            self.memory.process(access)
        self.atomics.compulsory += task.atomics_compulsory
        self.atomics.conflict += task.atomics_conflict
        self._tasks.append(task)

    def synchronize(self) -> None:
        """Record one device-wide synchronization barrier."""
        self._sync_count += 1

    def add_overhead(self, seconds: float) -> None:
        self._extra_overhead += seconds

    # -- incremental attribution ------------------------------------------------
    def snapshot(self) -> tuple:
        """Opaque cursor of the counters, for per-phase attribution."""
        c = self.memory.counters
        return (c.l1_txns, c.l2_txns, c.dram_read_txns, c.dram_write_txns,
                self.atomics.compulsory, self.atomics.conflict,
                len(self._tasks), self._sync_count, self._extra_overhead)

    def delta_since(self, snap: tuple) -> dict:
        """Counter growth since :meth:`snapshot` (for phase breakdowns)."""
        c = self.memory.counters
        tasks = self._tasks[snap[6]:]
        return {
            "l1_txns": c.l1_txns - snap[0],
            "l2_txns": c.l2_txns - snap[1],
            "dram_txns": (c.dram_read_txns - snap[2]) + (c.dram_write_txns - snap[3]),
            "atomics_compulsory": self.atomics.compulsory - snap[4],
            "atomics_conflict": self.atomics.conflict - snap[5],
            "num_tasks": len(tasks),
            "flops": float(sum(t.flops for t in tasks)),
            "syncs": self._sync_count - snap[7],
            "overhead_s": self._extra_overhead - snap[8],
            "dram_time_s": ((c.dram_read_txns - snap[2]) + (c.dram_write_txns - snap[3]))
                           / self.spec.txn_rate,
        }

    # -- results ------------------------------------------------------------
    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(self._tasks)

    def finish(self) -> RunMetrics:
        """Flush persistent dirty data and compute the final breakdown."""
        if not self._finished:
            self.memory.flush()
            self._finished = True
        breakdown = compute_breakdown(
            self.spec,
            self._tasks,
            self.memory.counters,
            self.atomics,
            sync_count=self._sync_count,
            extra_overhead_s=self._extra_overhead,
        )
        return RunMetrics(
            memory=self.memory.counters,
            atomics=self.atomics,
            time=breakdown,
            num_tasks=len(self._tasks),
            total_flops=float(sum(t.flops for t in self._tasks)),
        )
