"""The Device facade: what execution strategies run against.

A :class:`Device` owns one memory system and one atomic-counter set for a
run.  Executors allocate buffers, submit :class:`~repro.gpusim.trace.Task`
objects (each task's accesses are pushed through the memory hierarchy as it
is submitted, so L2 state evolves in issue order -- the property merged
execution exploits), and finally call :meth:`finish` to obtain the
:class:`RunMetrics` with counters and the paper-style time breakdown.

Observability: the device maintains per-worker lane clocks and stamps every
submitted task with an issue-order ``(start_s, end_s)`` from the
``spec.task_time`` model, so each run yields a timeline.  Attached observers
(see :mod:`repro.profiling`) are notified of allocations and discards, task
submissions (with the task's own counter delta), functional kernel values
(:meth:`note_values`), synchronizations, attribution scopes, and run
completion.  The timeline is an *issue-order* view for tracing; the
authoritative end-to-end time remains the :class:`TimeBreakdown` makespan
model, which additionally accounts for memory/compute overlap.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.gpusim.atomics import AtomicCounters
from repro.gpusim.memory import MemoryCounters, MemorySystem
from repro.gpusim.simpath import VECTORIZED, active_path
from repro.gpusim.spec import A100, GPUSpec
from repro.gpusim.timing import TimeBreakdown, compute_breakdown
from repro.gpusim.trace import Buffer, Task
from repro.metrics.registry import MetricsRegistry

__all__ = ["Device", "RunMetrics"]

# Per-task registry counters, in the order of the counter-delta tuple below.
_TASK_METRICS = ("l1_txns", "l2_txns", "dram_read_txns", "dram_write_txns",
                 "atomics_compulsory", "atomics_conflict")


@dataclass(frozen=True)
class RunMetrics:
    """Everything a benchmark needs about one execution."""

    memory: MemoryCounters
    atomics: AtomicCounters
    time: TimeBreakdown
    num_tasks: int
    total_flops: float

    @property
    def dram_time(self) -> float:
        return self.time.dram

    @property
    def total_time(self) -> float:
        return self.time.total


class Device:
    """A simulated GPU for the duration of one execution run."""

    def __init__(self, spec: GPUSpec = A100, observers: Iterable = (),
                 registry: MetricsRegistry | None = None,
                 sim_path: str | None = None) -> None:
        self.spec = spec
        self.memory = MemorySystem(spec)
        # scalar (per-access oracle) vs vectorized (batched) accounting;
        # resolved from REPRO_SIM_PATH unless explicitly overridden.
        self.sim_path = active_path(sim_path)
        self._vectorized = self.sim_path == VECTORIZED
        self.atomics = AtomicCounters()
        self.observers: list = list(observers)
        # Always-on metrics: every run leaves a labelled registry, whether or
        # not anyone attached observers.  The engine passes a shared registry
        # (with model/strategy/subgraph scopes); standalone devices own one.
        self.metrics_registry = registry if registry is not None else MetricsRegistry()
        # Resolved counter-handle rows per (context_token, node_id): label
        # scopes change rarely relative to task submission, so the hot path
        # is one dict hit plus attribute adds.
        self._metric_rows: dict[tuple[int, int | None], tuple] = {}
        self._tasks: list[Task] = []
        self._sync_count = 0
        self._extra_overhead = 0.0
        self._finished = False
        self._lanes: list[float] = [0.0] * max(1, spec.num_sms)
        self._scope: tuple[int | None, str | None] = (None, None)
        # Serve-layer trace provenance ``(trace_id, parent_span_id)``; when
        # set, every submitted task is stamped with it.  One None-check per
        # submit -- the vectorized accounting hot path is untouched.
        self._trace_ctx: tuple[str, str] | None = None

    def set_trace_context(self, trace_id: str | None,
                          span_id: str | None) -> None:
        """Stamp subsequent tasks with a serve-request trace context (both
        ``None`` clears it).  Called once per run by the engine, never from
        the per-task path."""
        if trace_id is None or span_id is None:
            self._trace_ctx = None
        else:
            self._trace_ctx = (trace_id, span_id)

    # -- observers -----------------------------------------------------------
    def attach(self, observer):
        """Attach an execution observer (e.g. a ``TraceCollector``)."""
        self.observers.append(observer)
        return observer

    @contextmanager
    def scope(self, subgraph_index: int | None = None,
              strategy: str | None = None,
              brick: str | None = None) -> Iterator[None]:
        """Attribution scope: tasks submitted inside are stamped with the
        plan entry and strategy (unless the executor set them already), and
        observers can attribute out-of-task counter growth to the scope.
        The metrics registry gets matching ``(strategy, brick, subgraph)``
        default labels for everything recorded inside."""
        prev = self._scope
        self._scope = (subgraph_index, strategy)
        for obs in self.observers:
            obs.on_scope_begin(self, subgraph_index, strategy)
        try:
            with self.metrics_registry.label_scope(
                    strategy=strategy, brick=brick, subgraph=subgraph_index):
                yield
        finally:
            for obs in self.observers:
                obs.on_scope_end(self, subgraph_index, strategy)
            self._scope = prev

    @property
    def now_s(self) -> float:
        """Issue-order wall clock: the furthest lane's time."""
        return max(self._lanes)

    def counter_state(self) -> dict[str, float]:
        """Cumulative counters, for observers' attribution bookkeeping."""
        c = self.memory.counters
        return {
            "l1_txns": c.l1_txns,
            "l2_txns": c.l2_txns,
            "dram_txns": c.dram_read_txns + c.dram_write_txns,
            "dram_read_txns": c.dram_read_txns,
            "dram_write_txns": c.dram_write_txns,
            "atomics_compulsory": self.atomics.compulsory,
            "atomics_conflict": self.atomics.conflict,
            "overhead_s": self._extra_overhead,
        }

    # -- buffers -------------------------------------------------------------
    def allocate(self, name: str, nbytes: int, transient: bool = False) -> Buffer:
        buffer = self.memory.allocate(name, nbytes, transient)
        for obs in self.observers:
            obs.on_alloc(self, buffer)
        return buffer

    def discard(self, buffer: Buffer) -> None:
        self.memory.discard(buffer)
        for obs in self.observers:
            obs.on_discard(self, buffer)

    # -- execution -----------------------------------------------------------
    def _metric_row(self, node_id: int | None) -> tuple:
        """Resolve (and cache) the registry counter handles for a node under
        the current label scope."""
        reg = self.metrics_registry
        key = (reg.context_token, node_id)
        row = self._metric_rows.get(key)
        if row is None:
            row = tuple(reg.counter(name, node=node_id) for name in _TASK_METRICS)
            row += (reg.counter("tasks", node=node_id),
                    reg.counter("flops", node=node_id))
            self._metric_rows[key] = row
        return row

    def submit(self, task: Task) -> None:
        """Run one fine-grained kernel invocation through the hierarchy."""
        c = self.memory.counters
        before = (c.l1_txns, c.l2_txns, c.dram_read_txns, c.dram_write_txns,
                  self.atomics.compulsory, self.atomics.conflict)
        self.memory.begin_task()
        if self._vectorized:
            self.memory.process_batch(task.accesses, task.batch_spans)
        else:
            for access in task.accesses:
                self.memory.process(access)
        self.atomics.compulsory += task.atomics_compulsory
        self.atomics.conflict += task.atomics_conflict

        # Timeline: place the task on its worker's lane (executor-chosen) or
        # the earliest-available lane, issue-order, using the task_time model.
        duration = self.spec.task_time(task.flops, task.calls)
        if task.worker is None:
            lane = min(range(len(self._lanes)), key=self._lanes.__getitem__)
        else:
            lane = task.worker % len(self._lanes)
        task.worker = lane
        task.start_s = self._lanes[lane]
        task.end_s = task.start_s + duration
        self._lanes[lane] = task.end_s
        if task.subgraph_index is None:
            task.subgraph_index = self._scope[0]
        if task.strategy is None:
            task.strategy = self._scope[1]
        if self._trace_ctx is not None:
            task.trace = self._trace_ctx

        self._tasks.append(task)
        deltas = (c.l1_txns - before[0], c.l2_txns - before[1],
                  c.dram_read_txns - before[2], c.dram_write_txns - before[3],
                  self.atomics.compulsory - before[4],
                  self.atomics.conflict - before[5])
        row = self._metric_row(task.node_id)
        for counter, delta in zip(row, deltas):
            if delta:
                counter.value += delta
        row[-2].value += 1
        row[-1].value += task.flops
        if self.observers:
            delta_map = dict(zip(_TASK_METRICS, deltas))
            delta_map["dram_txns"] = deltas[2] + deltas[3]
            for obs in self.observers:
                obs.on_task_submit(self, task, delta_map)

    def note_values(self, task: Task | None, node_id: int | None, values) -> None:
        """Announce a functional-mode kernel result to the observers.

        Pure observability: no counters move.  Executors call this with the
        NumPy patch a task computed so value-level observers (the numeric
        sanitizer) can screen outputs with (node, subgraph, brick) identity.
        """
        for obs in self.observers:
            obs.on_task_values(self, task, node_id, values)

    def synchronize(self) -> None:
        """Record one device-wide synchronization barrier."""
        self._sync_count += 1
        self.metrics_registry.inc("syncs")
        barrier = self.now_s + self.spec.sync_time_s
        self._lanes = [barrier] * len(self._lanes)
        for obs in self.observers:
            obs.on_sync(self, barrier)

    def add_overhead(self, seconds: float) -> None:
        self._extra_overhead += seconds

    # -- incremental attribution ------------------------------------------------
    def snapshot(self) -> tuple:
        """Opaque cursor of the counters, for per-phase attribution."""
        c = self.memory.counters
        return (c.l1_txns, c.l2_txns, c.dram_read_txns, c.dram_write_txns,
                self.atomics.compulsory, self.atomics.conflict,
                len(self._tasks), self._sync_count, self._extra_overhead)

    def delta_since(self, snap: tuple) -> dict:
        """Counter growth since :meth:`snapshot` (for phase breakdowns)."""
        c = self.memory.counters
        tasks = self._tasks[snap[6]:]
        return {
            "l1_txns": c.l1_txns - snap[0],
            "l2_txns": c.l2_txns - snap[1],
            "dram_txns": (c.dram_read_txns - snap[2]) + (c.dram_write_txns - snap[3]),
            "atomics_compulsory": self.atomics.compulsory - snap[4],
            "atomics_conflict": self.atomics.conflict - snap[5],
            "num_tasks": len(tasks),
            "flops": float(sum(t.flops for t in tasks)),
            "syncs": self._sync_count - snap[7],
            "overhead_s": self._extra_overhead - snap[8],
            "dram_time_s": ((c.dram_read_txns - snap[2]) + (c.dram_write_txns - snap[3]))
                           / self.spec.txn_rate,
        }

    # -- results ------------------------------------------------------------
    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(self._tasks)

    def finish(self) -> RunMetrics:
        """Flush persistent dirty data and compute the final breakdown."""
        first = not self._finished
        if first:
            self.memory.flush()
            self._finished = True
            self._export_cache_stats()
        breakdown = compute_breakdown(
            self.spec,
            self._tasks,
            self.memory.counters,
            self.atomics,
            sync_count=self._sync_count,
            extra_overhead_s=self._extra_overhead,
        )
        metrics = RunMetrics(
            memory=self.memory.counters,
            atomics=self.atomics,
            time=breakdown,
            num_tasks=len(self._tasks),
            total_flops=float(sum(t.flops for t in self._tasks)),
        )
        if first:
            for obs in self.observers:
                obs.on_finish(self, metrics)
        return metrics

    def _export_cache_stats(self) -> None:
        """Publish end-of-run cache-model accounting as registry gauges."""
        reg = self.metrics_registry
        stats = self.memory.stats()
        for level in ("l1", "l2"):
            for name, value in stats[level].items():
                reg.gauge(f"cache_{name}", level=level).set(value)
        for name, value in stats["analytic"].items():
            # "resident_bytes" keeps its historical gauge name
            # ("analytic_resident_bytes"); the ledger entries follow suit.
            reg.gauge(f"analytic_{name}").set(value)
