"""Sector-granular LRU cache model.

Residency is tracked at *sector* granularity (a power-of-two byte quantum,
coarser than the 32 B transaction size) to keep simulation tractable while
transaction counts stay exact-to-the-byte: the cache reports hit/miss *byte*
spans per access, and the memory system converts byte spans into 32 B
transactions.

Write policy is write-allocate with dirty-byte tracking; evictions report how
many dirty bytes must be written downstream.  ``discard`` drops a buffer's
sectors without write-back (transient data dying on-device).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

__all__ = ["SectorCache", "SpanResult"]


class SpanResult:
    """Byte accounting for one access: how much hit, how much missed."""

    __slots__ = ("hit_bytes", "miss_bytes")

    def __init__(self, hit_bytes: int = 0, miss_bytes: int = 0) -> None:
        self.hit_bytes = hit_bytes
        self.miss_bytes = miss_bytes


class SectorCache:
    """A fully-associative LRU cache over ``(buffer_id, sector)`` keys."""

    def __init__(self, capacity_bytes: int, sector_bytes: int) -> None:
        if sector_bytes <= 0 or capacity_bytes < sector_bytes:
            raise ValueError(f"bad cache geometry: capacity={capacity_bytes}, sector={sector_bytes}")
        self.sector_bytes = int(sector_bytes)
        self.capacity_sectors = int(capacity_bytes) // self.sector_bytes
        # key -> dirty byte count for that sector (0 = clean)
        self._lru: OrderedDict[tuple[int, int], int] = OrderedDict()
        self.evicted_dirty_bytes = 0
        # Lifetime accounting (survives clear()/drain, feeds the metrics
        # registry): every accessed byte lands in exactly one of hit/miss,
        # and every dirty byte leaves through exactly one of evicted (LRU),
        # flushed (write-back), or discarded (dropped without write-back).
        self.hit_bytes_total = 0
        self.miss_bytes_total = 0
        self.evicted_dirty_bytes_total = 0
        self.flushed_dirty_bytes = 0
        self.discarded_dirty_bytes = 0

    def __len__(self) -> int:
        return len(self._lru)

    def _sectors(self, offset: int, nbytes: int) -> Iterator[tuple[int, int]]:
        """Yield ``(sector_index, bytes_of_access_in_sector)``."""
        sb = self.sector_bytes
        first = offset // sb
        last = (offset + nbytes - 1) // sb
        if first == last:
            yield first, nbytes
            return
        yield first, (first + 1) * sb - offset
        for s in range(first + 1, last):
            yield s, sb
        yield last, offset + nbytes - last * sb

    def access(self, buffer_id: int, offset: int, nbytes: int, write: bool) -> SpanResult:
        """Touch a byte range; returns hit/miss byte accounting.

        Misses allocate the sector (write-allocate); LRU eviction accumulates
        ``evicted_dirty_bytes`` for downstream write-back accounting.
        """
        result = SpanResult()
        if nbytes <= 0:
            return result
        lru = self._lru
        for sector, span in self._sectors(offset, nbytes):
            key = (buffer_id, sector)
            dirty = lru.get(key)
            if dirty is None:
                result.miss_bytes += span
                lru[key] = min(span, self.sector_bytes) if write else 0
                if len(lru) > self.capacity_sectors:
                    _, evicted_dirty = lru.popitem(last=False)
                    self.evicted_dirty_bytes += evicted_dirty
                    self.evicted_dirty_bytes_total += evicted_dirty
            else:
                result.hit_bytes += span
                lru.move_to_end(key)
                if write:
                    lru[key] = min(self.sector_bytes, dirty + span)
        self.hit_bytes_total += result.hit_bytes
        self.miss_bytes_total += result.miss_bytes
        return result

    def discard(self, buffer_id: int) -> int:
        """Drop all sectors of a buffer without write-back; returns count.

        Dirty bytes dropped this way are attributed to
        ``discarded_dirty_bytes`` (transient data dying on-device), never to
        the flushed/evicted write-back totals.
        """
        doomed = [k for k in self._lru if k[0] == buffer_id]
        for k in doomed:
            self.discarded_dirty_bytes += self._lru[k]
            del self._lru[k]
        return len(doomed)

    def flush(self) -> int:
        """Write back all dirty bytes; returns the number of dirty bytes."""
        dirty = sum(self._lru.values())
        for key in self._lru:
            self._lru[key] = 0
        self.flushed_dirty_bytes += dirty
        return dirty

    def drain_evicted_dirty(self) -> int:
        """Return and reset the dirty bytes evicted since the last drain."""
        d = self.evicted_dirty_bytes
        self.evicted_dirty_bytes = 0
        return d

    def clear(self) -> None:
        """Drop all state (lifetime totals are preserved: the per-task L1
        reset and the streaming fast path both clear, and the registry reads
        the totals after the run)."""
        self._lru.clear()
        self.evicted_dirty_bytes = 0

    def stats(self) -> dict[str, int]:
        """Lifetime byte accounting, for the metrics registry."""
        return {
            "hit_bytes": self.hit_bytes_total,
            "miss_bytes": self.miss_bytes_total,
            "evicted_dirty_bytes": self.evicted_dirty_bytes_total,
            "flushed_dirty_bytes": self.flushed_dirty_bytes,
            "discarded_dirty_bytes": self.discarded_dirty_bytes,
            "resident_sectors": len(self._lru),
        }
