"""GPU device parameter presets.

The defaults model the NVIDIA A100 of the paper's testbed (section 4.1): 108
SMs, 192 KB combined L1/shared-memory per SM, 40 MB shared L2, 40 GB HBM at
1.5 TB/s, 32-byte DRAM transactions.

Two calibrated *effective-rate* constants tie the timing model to the paper's
own microbenchmarks (section 4.3):

* ``atomic_time_s = 87.45 ns`` -- the paper's measured per-CAS cost,
* ``sm_gflops_effective`` and ``call_overhead_s`` are chosen so that the
  brick-compute microbenchmark (8x8x8 brick, 3x3x3 single-channel filter)
  yields the paper's ``T_brick = 6.72 us``:
  ``4.4 us + (512 * 27 * 2) / 12 GF/s = 6.7 us``.

Fine-grained device-side cuDNN invocations run far below peak (the paper's
own totals imply ~1.3 TF/s effective device-wide for such call patterns),
which is what these constants encode.  Alternative presets support the
ablation benchmarks (smaller L2, different SM counts).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "A100", "MI100", "A100_SMALL_L2", "GENERIC_16SM"]


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of the simulated device and its cost model."""

    name: str = "A100"
    num_sms: int = 108
    l1_bytes: int = 192 * 1024          # combined L1/shared memory per SM
    l2_bytes: int = 40 * 1024 * 1024
    dram_bytes: int = 40 * 1024 ** 3
    dram_bandwidth: float = 1.5e12      # bytes / second
    transaction_bytes: int = 32         # DRAM transaction granularity
    l1_sector_bytes: int = 256          # residency tracking granularity
    l2_sector_bytes: int = 2048

    # Calibrated timing constants (see module docstring).
    sm_gflops_effective: float = 12.0   # per-SM effective GF/s for brick calls
    call_overhead_s: float = 4.4e-6     # per fine-grained kernel invocation
    atomic_time_s: float = 87.45e-9     # per atomic CAS (paper, section 4.3.1)
    sync_time_s: float = 25e-6          # device-wide synchronization barrier
    memo_visit_s: float = 0.15e-6       # memo-table bookkeeping per recursion step
    # Fraction of the smaller of (DRAM time, compute time) hidden by
    # memory/compute overlap: 0 = fully serialized, 1 = perfect overlap.
    # The paper's analysis assumes perfect overlap (section 4.4), and the
    # case-study bar charts are constructed on that premise; we default to a
    # high-but-imperfect 0.9 so compute-bound configurations still surface.
    overlap_efficiency: float = 0.9
    # A worker stalled on an in-progress brick re-issues its CAS at this
    # interval (hardware spin-wait with backoff); drives the conflict-atomic
    # counts of the memoized strategy.
    spin_interval_s: float = 5e-6

    # Effective DRAM transaction service rate ``R_txn``.  The paper states
    # "an R_txn of 46M txn/s" (section 4.2).  The raw formula
    # bandwidth / 32 B gives 46.9 *G* txn/s, but the paper's *plotted* DRAM
    # times -- a large visible fraction of every bar in Figs. 7-11 -- are only
    # consistent with the 46M number, which effectively folds per-transaction
    # latency/occupancy into the rate.  We follow the paper's constant so the
    # memory/compute balance of the figures is reproduced; see EXPERIMENTS.md.
    dram_txn_rate: float = 46.9e6

    @property
    def txn_rate(self) -> float:
        """DRAM transaction service rate ``R_txn`` (transactions/second)."""
        return self.dram_txn_rate

    @property
    def sm_flops(self) -> float:
        return self.sm_gflops_effective * 1e9

    def task_time(self, flops: int | float, calls: int = 1) -> float:
        """Modeled execution time of a task comprising ``calls`` fine-grained
        kernel invocations totalling ``flops`` floating point operations."""
        return calls * self.call_overhead_s + float(flops) / self.sm_flops

    def with_l2(self, l2_bytes: int) -> "GPUSpec":
        return replace(self, l2_bytes=int(l2_bytes), name=f"{self.name}-l2={l2_bytes // (1024 * 1024)}MB")


A100 = GPUSpec()

# AMD MI100-class preset: the paper notes the delta threshold "has been
# validated on multiple NVIDIA and AMD GPU architectures"; this preset lets
# the ablations check the models against a different cache/SM balance
# (120 CUs, 8 MB L2, ~1.2 TB/s HBM2).
MI100 = replace(
    A100,
    name="MI100",
    num_sms=120,
    l1_bytes=64 * 1024,
    l2_bytes=8 * 1024 * 1024,
    dram_bandwidth=1.2e12,
    dram_txn_rate=37.5e6,  # scaled with bandwidth, same latency folding
)

# Ablation presets.
A100_SMALL_L2 = A100.with_l2(10 * 1024 * 1024)
GENERIC_16SM = replace(A100, name="generic-16sm", num_sms=16)
