"""Device timing model: tasks + counters -> the paper's time breakdown.

The paper's case studies (Figs. 8, 10, 11) plot, for each configuration, a
*memory* bar (DRAM time + idle) and a *computation* bar (modeled compute +
compulsory atomics + conflict atomics + other), both equal to the total
execution time, under the stated assumption that compute perfectly overlaps
DRAM transfers.  This module reproduces exactly those derivations:

* ``dram_time = N_txn / R_txn``  (section 4.2),
* compute is the makespan of per-invocation times
  (``call_overhead + flops / sm_rate``) greedily scheduled over the SMs,
* atomics cost ``87.45 ns`` each (section 4.3.1),
* ``total = max(dram, compute + atomics) + sync + recursion overheads``,
* ``idle = total - dram_time``; ``other = total - compute - atomics``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gpusim.atomics import AtomicCounters
from repro.gpusim.memory import MemoryCounters
from repro.gpusim.spec import GPUSpec
from repro.gpusim.trace import Task

__all__ = ["TimeBreakdown", "schedule_makespan", "compute_breakdown"]


def schedule_makespan(spec: GPUSpec, durations: Iterable[float]) -> float:
    """Greedy list-scheduling makespan of task durations over the SMs."""
    sms = [0.0] * spec.num_sms
    heapq.heapify(sms)
    makespan = 0.0
    for d in durations:
        t = heapq.heappop(sms) + d
        heapq.heappush(sms, t)
        if t > makespan:
            makespan = t
    return makespan


@dataclass(frozen=True)
class TimeBreakdown:
    """All times in seconds; the component identities from the paper hold:
    ``idle + dram == total == other + compute + atomics_*``."""

    total: float
    dram: float
    idle: float
    compute: float
    atomics_compulsory: float
    atomics_conflict: float
    other: float

    @property
    def memory_side(self) -> tuple[float, float]:
        """(dram, idle) -- the paper's "M" bar, stacked."""
        return (self.dram, self.idle)

    @property
    def compute_side(self) -> tuple[float, float, float, float]:
        """(compute, atomics compulsory, atomics conflict, other) -- "C" bar."""
        return (self.compute, self.atomics_compulsory, self.atomics_conflict, self.other)

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(*(getattr(self, f) * factor for f in (
            "total", "dram", "idle", "compute", "atomics_compulsory", "atomics_conflict", "other")))


def compute_breakdown(
    spec: GPUSpec,
    tasks: Sequence[Task],
    memory: MemoryCounters,
    atomics: AtomicCounters,
    sync_count: int = 0,
    extra_overhead_s: float = 0.0,
) -> TimeBreakdown:
    """Derive the full breakdown for one run.

    ``sync_count`` is the number of device-wide synchronizations the
    execution strategy required (per operator for the baseline, per subgraph
    for merged execution).  ``extra_overhead_s`` captures strategy-specific
    serial overheads (e.g. host-side graph bookkeeping).
    """
    dram_time = memory.dram_txns / spec.txn_rate
    compute_time = schedule_makespan(spec, (spec.task_time(t.flops, t.calls) for t in tasks))
    atomic_comp = atomics.compulsory_time(spec)
    atomic_conf = atomics.conflict_time(spec)
    visit_overhead = sum(t.visits for t in tasks) * spec.memo_visit_s
    overhead = sync_count * spec.sync_time_s + visit_overhead + extra_overhead_s

    busy = compute_time + atomic_comp + atomic_conf
    hidden = spec.overlap_efficiency * min(dram_time, busy)
    total = dram_time + busy - hidden + overhead
    idle = total - dram_time
    other = total - compute_time - atomic_comp - atomic_conf
    return TimeBreakdown(
        total=total,
        dram=dram_time,
        idle=idle,
        compute=compute_time,
        atomics_compulsory=atomic_comp,
        atomics_conflict=atomic_conf,
        other=other,
    )
