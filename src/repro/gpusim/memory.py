"""Memory-hierarchy simulation: access streams -> transaction counters.

Models the A100 path **global memory -> L2 -> DRAM** with the counters the
paper reads from Nsight Compute (Fig. 9):

* *Global (L1) transactions* -- every byte a kernel requests, counted in
  32 B aligned lines.  Padded bricks request halo bytes and keep their
  intermediate patches in thread-block-local storage (``on_chip`` accesses),
  so their L1 count rises mechanically -- the paper's "overfetch".
* *L2 transactions* -- requests that miss the per-task L1 (GPU L1s are
  write-through, so stores always reach L2).
* *DRAM transactions* -- L2 read misses plus write-backs of evicted or
  flushed dirty data.

Two residency models share the L2 capacity figure, matched to the two access
classes in the workloads:

* **Sector LRU** for blocked (brick) traffic: bricks are contiguous and
  re-read by spatial neighbors shortly after being written, so residency is
  tracked exactly, at sector granularity, in true access order.  This is
  what makes merged execution's temporal locality measurable.
* **Analytic per-buffer residency** for dense row-major traffic
  (``Access.dense``): tiled/slabbed kernels sweep whole activations whose
  strided segments are far finer than any tractable tracking granularity.
  Residency is kept per buffer with strict-LRU semantics: a buffer larger
  than the capacity gives *zero* re-read reuse (cyclic LRU thrash -- this is
  precisely why layer-by-layer execution streams through DRAM), a smaller
  buffer hits in proportion to its resident fraction.

The two models each see the full capacity (they never evict each other);
runs are dominated by one class at a time, and EXPERIMENTS.md notes the
approximation.  The per-task L1 is reset per task: each fine-grained kernel
invocation runs on a fresh thread block.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gpusim.cache import SectorCache
from repro.gpusim.spec import GPUSpec
from repro.gpusim.trace import Access, BatchSpan, Buffer

__all__ = ["MemoryCounters", "MemorySystem", "AnalyticResidency"]


def _lines(offset: int, nbytes: int, line: int) -> int:
    """32 B-aligned lines touched by a byte range (alignment overfetch)."""
    if nbytes <= 0:
        return 0
    return (offset + nbytes - 1) // line - offset // line + 1


def _txns(nbytes: int, line: int) -> int:
    return -(-int(nbytes) // line) if nbytes > 0 else 0


# Transaction-charging convention, applied uniformly on read and write paths:
# a *whole byte range* moving through a level is charged offset-aware
# (``_lines``: alignment overfetch included), while *modeled byte quantities*
# without a concrete range (partial-span cache misses, analytic-residency
# misses and spills, dirty write-backs) are charged ``_txns`` (ceil-div).
# The same byte range therefore costs the same transactions whether it is
# being loaded or stored.


@dataclass
class MemoryCounters:
    """Nsight-style transaction counters (32 B units)."""

    l1_txns: int = 0
    l2_txns: int = 0
    dram_read_txns: int = 0
    dram_write_txns: int = 0

    @property
    def dram_txns(self) -> int:
        return self.dram_read_txns + self.dram_write_txns

    @property
    def dram_bytes(self) -> int:
        return self.dram_txns * 32

    def merged_with(self, other: "MemoryCounters") -> "MemoryCounters":
        return MemoryCounters(
            self.l1_txns + other.l1_txns,
            self.l2_txns + other.l2_txns,
            self.dram_read_txns + other.dram_read_txns,
            self.dram_write_txns + other.dram_write_txns,
        )


class AnalyticResidency:
    """Per-buffer L2 residency for dense row-major activations.

    Tracks ``(resident_bytes, dirty_bytes)`` per buffer in LRU order.
    Strict-LRU semantics for re-reads: a buffer that does not fit the
    capacity yields no read reuse at all (cyclic thrash), a fitting buffer
    hits in proportion to its resident fraction.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[int, list[int]] = OrderedDict()  # id -> [resident, dirty]
        # Running sum of resident bytes, so eviction pressure is a single
        # comparison instead of an O(n) sum per loop iteration.
        self._resident = 0
        # Lifetime dirty-byte conservation ledger (mirrors SectorCache):
        # every byte that acquires a write-back obligation here leaves
        # through exactly one of spilled (LRU overflow), flushed (end-of-run
        # write-back), or discarded (transient data dropped on-device).
        self.written_dirty_bytes = 0
        self.spilled_dirty_bytes = 0
        self.flushed_dirty_bytes = 0
        self.discarded_dirty_bytes = 0

    def total(self) -> int:
        return self._resident

    def dirty_resident(self) -> int:
        return sum(e[1] for e in self._entries.values())

    def read(self, buffer: Buffer, touched: int) -> tuple[int, int, int]:
        """Returns ``(hit_bytes, miss_bytes, spilled_dirty_bytes)``.

        Misses become resident; insertions can evict other buffers, and the
        dirty bytes those evictions spill must reach the DRAM write counter
        (they are part of the conservation ledger, not silently droppable).
        """
        if buffer.nbytes > self.capacity:
            # Streaming: no reuse, and do not pollute residency.
            return 0, touched, 0
        entry = self._entries.get(buffer.buffer_id)
        resident = entry[0] if entry else 0
        hit = min(touched, touched * resident // max(buffer.nbytes, 1))
        miss = touched - hit
        spilled = self._insert(buffer, miss, dirty=0)
        return hit, miss, spilled

    def write(self, buffer: Buffer, written: int) -> int:
        """Returns dirty bytes immediately spilled to DRAM (overflow)."""
        if buffer.nbytes > self.capacity:
            # Larger-than-cache outputs stream their overflow to DRAM; keep
            # nothing resident (strict-LRU re-reads would miss anyway).
            self.written_dirty_bytes += written
            self.spilled_dirty_bytes += written
            return written
        return self._insert(buffer, written, dirty=written)

    def _insert(self, buffer: Buffer, nbytes: int, dirty: int) -> int:
        entry = self._entries.setdefault(buffer.buffer_id, [0, 0])
        grown = min(buffer.nbytes, entry[0] + nbytes)
        self._resident += grown - entry[0]
        entry[0] = grown
        if dirty:
            clamped = min(grown, entry[1] + dirty)
            self.written_dirty_bytes += clamped - entry[1]
            entry[1] = clamped
        self._entries.move_to_end(buffer.buffer_id)
        spilled = 0
        while self._resident > self.capacity and len(self._entries) > 1:
            _, (res, drt) = self._entries.popitem(last=False)
            self._resident -= res
            spilled += drt
        self.spilled_dirty_bytes += spilled
        return spilled

    def discard(self, buffer_id: int) -> None:
        entry = self._entries.pop(buffer_id, None)
        if entry is not None:
            self._resident -= entry[0]
            self.discarded_dirty_bytes += entry[1]

    def flush(self, keep_transient: dict[int, Buffer]) -> int:
        dirty = 0
        for bid, entry in self._entries.items():
            if entry[1]:
                buf = keep_transient.get(bid)
                if buf is None or not buf.transient:
                    dirty += entry[1]
                else:
                    # Transient dirty data dies on-device: dropped, not
                    # written back.
                    self.discarded_dirty_bytes += entry[1]
            entry[1] = 0
        self.flushed_dirty_bytes += dirty
        return dirty

    def stats(self) -> dict[str, int]:
        """Lifetime byte accounting, for the metrics registry."""
        return {
            "resident_bytes": self._resident,
            "dirty_resident_bytes": self.dirty_resident(),
            "written_dirty_bytes": self.written_dirty_bytes,
            "spilled_dirty_bytes": self.spilled_dirty_bytes,
            "flushed_dirty_bytes": self.flushed_dirty_bytes,
            "discarded_dirty_bytes": self.discarded_dirty_bytes,
        }


class MemorySystem:
    """Processes access streams and accumulates transaction counters."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        self.line = spec.transaction_bytes
        self.l2 = SectorCache(spec.l2_bytes, spec.l2_sector_bytes)
        self.l1 = SectorCache(spec.l1_bytes, spec.l1_sector_bytes)
        self.analytic = AnalyticResidency(spec.l2_bytes)
        self.counters = MemoryCounters()
        self._buffers: dict[int, Buffer] = {}
        # Streaming fast-path threshold for contiguous blocked accesses: one
        # access this large sweeps the whole L2; count it arithmetically.
        self._stream_threshold = 4 * spec.l2_bytes
        # Pinned buffers (hot weights): resident in L2 after first touch,
        # accounted arithmetically instead of through the LRU.  Only sound
        # while the pinned working set is small relative to L2 -- the engine
        # pins one subgraph's weights at a time.
        self._pinned: set[int] = set()
        self._pinned_seen: set[int] = set()
        # Signature memo for the vectorized path: pure (state-free) access
        # classes -- on-chip, executor-certified L2 hits, already-resident
        # pinned reads, streaming dense traffic -- have counter deltas that
        # depend only on (class, offset alignment, nbytes, segments).  Bricks
        # with identical shape/halo/layout and the same residency-state
        # digest (the class code folds in pinned-seen membership and the
        # streaming classification) therefore replay a precomputed delta.
        # Keys never go stale: state-dependent classes bypass the memo, and
        # the state that picks the class is re-read on every lookup.
        self._sig_memo: dict[tuple[int, int, int, int],
                             tuple[int, int, int, int]] = {}

    # -- allocation ---------------------------------------------------------
    def register(self, buffer: Buffer) -> Buffer:
        self._buffers[buffer.buffer_id] = buffer
        return buffer

    def allocate(self, name: str, nbytes: int, transient: bool = False) -> Buffer:
        return self.register(Buffer.new(name, nbytes, transient))

    def pin(self, buffer: Buffer) -> None:
        """Mark a buffer L2-resident-after-first-touch (hot weights)."""
        self._pinned.add(buffer.buffer_id)

    def unpin(self, buffer: Buffer) -> None:
        self._pinned.discard(buffer.buffer_id)
        self._pinned_seen.discard(buffer.buffer_id)

    # -- task lifecycle -------------------------------------------------------
    def begin_task(self) -> None:
        """Start a new thread block: L1 state does not carry over."""
        self.l1.clear()

    def process(self, access: Access) -> None:
        c = self.counters
        lines = _lines(access.offset, access.nbytes, self.line) * access.segments
        c.l1_txns += lines
        if access.on_chip:
            return  # thread-block private: never leaves the SM
        if access.assume_l2:
            # Executor-certified L2 hit (protocol-coalesced consumer read).
            c.l2_txns += lines
            return
        if access.buffer.buffer_id in self._pinned:
            c.l2_txns += lines
            if access.buffer.buffer_id not in self._pinned_seen:
                self._pinned_seen.add(access.buffer.buffer_id)
                c.dram_read_txns += _txns(access.buffer.nbytes, self.line)
            return
        if access.dense or access.reps:
            self._dense(access, lines)
        elif access.write:
            self._blocked_write(access)
        else:
            self._blocked_read(access)

    # -- dense path ---------------------------------------------------------
    def _dense(self, access: Access, lines: int) -> None:
        c = self.counters
        total = access.total_bytes
        c.l2_txns += lines  # write-through / L1 too small
        if access.write:
            spilled = self.analytic.write(access.buffer, total)
            c.dram_write_txns += _txns(spilled, self.line)
        else:
            _, miss, spilled = self.analytic.read(access.buffer, total)
            c.dram_read_txns += _txns(miss, self.line)
            if spilled:
                c.dram_write_txns += _txns(spilled, self.line)

    # -- blocked (brick) path ----------------------------------------------
    def _blocked_read(self, buffer_or_access: Access) -> None:
        a = buffer_or_access
        c = self.counters
        if a.nbytes >= self._stream_threshold:
            self._stream(a.offset, a.nbytes, write=False)
            return
        r1 = self.l1.access(a.buffer.buffer_id, a.offset, a.nbytes, write=False)
        if r1.miss_bytes:
            c.l2_txns += (_lines(a.offset, a.nbytes, self.line)
                          if r1.miss_bytes == a.nbytes
                          else _txns(r1.miss_bytes, self.line))
            r2 = self.l2.access(a.buffer.buffer_id, a.offset, a.nbytes, write=False)
            if r2.miss_bytes:
                c.dram_read_txns += (_lines(a.offset, a.nbytes, self.line)
                                     if r2.miss_bytes == a.nbytes
                                     else _txns(r2.miss_bytes, self.line))
            self._drain_evictions()

    def _blocked_write(self, a: Access) -> None:
        c = self.counters
        if a.nbytes >= self._stream_threshold:
            self._stream(a.offset, a.nbytes, write=True)
            return
        # Write-through L1: stores always generate L2 traffic.
        c.l2_txns += _lines(a.offset, a.nbytes, self.line)
        self.l1.access(a.buffer.buffer_id, a.offset, a.nbytes, write=True)
        self.l2.access(a.buffer.buffer_id, a.offset, a.nbytes, write=True)
        self._drain_evictions()

    def _stream(self, offset: int, nbytes: int, write: bool) -> None:
        """Arithmetic accounting for accesses that sweep the entire L2."""
        c = self.counters
        txns = _lines(offset, nbytes, self.line)
        c.l2_txns += txns
        if write:
            c.dram_write_txns += txns
        else:
            c.dram_read_txns += txns
        c.dram_write_txns += _txns(self.l2.flush(), self.line)
        self.l2.clear()

    # -- vectorized path -----------------------------------------------------
    def process_batch(self, accesses: Sequence[Access],
                      batch_spans: Iterable[BatchSpan] = ()) -> None:
        """Account a whole task's access stream at once.

        Counter-identical to calling :meth:`process` on each access in
        stream order -- rows are still consumed in order, but pure
        (state-free) classes are charged through the signature memo, uniform
        :class:`~repro.gpusim.trace.BatchSpan` runs are charged with numpy
        array arithmetic, and only the blocked-LRU and fitting-dense classes
        walk the exact cache models.
        """
        c = self.counters
        memo = self._sig_memo
        pinned = self._pinned
        seen = self._pinned_seen
        cap = self.analytic.capacity
        line = self.line
        process = self.process
        l1 = l2 = dr = dw = 0
        spans = ({s.start: s for s in batch_spans} if batch_spans else None)
        i = 0
        n = len(accesses)
        while i < n:
            if spans is not None:
                span = spans.get(i)
                if span is not None:
                    delta = self._span_delta(span)
                    if delta is not None:
                        l1 += delta[0]
                        l2 += delta[1]
                        dr += delta[2]
                        dw += delta[3]
                        i += span.count
                        continue
            a = accesses[i]
            i += 1
            # Residency-state digest: which pure class (if any) this row is
            # in *right now*.  -1 means state-dependent -> exact scalar walk.
            if a.on_chip:
                code = 0
            elif a.assume_l2:
                code = 1
            elif a.buffer.buffer_id in pinned:
                code = 1 if a.buffer.buffer_id in seen else -1
            elif (a.dense or a.reps) and a.buffer.nbytes > cap:
                code = 3 if a.write else 2
            else:
                code = -1
            if code < 0:
                process(a)
                continue
            key = (code, a.offset % line, a.nbytes, a.segments)
            delta = memo.get(key)
            if delta is None:
                lines = _lines(a.offset, a.nbytes, line) * a.segments
                txns = _txns(a.total_bytes, line)
                delta = ((lines, 0, 0, 0) if code == 0
                         else (lines, lines, 0, 0) if code == 1
                         else (lines, lines, txns, 0) if code == 2
                         else (lines, lines, 0, txns))
                if len(memo) < (1 << 20):
                    memo[key] = delta
            l1 += delta[0]
            l2 += delta[1]
            dr += delta[2]
            dw += delta[3]
            if code == 3:
                # Streaming dense write: the whole write spills (lifetime
                # conservation ledger, same as the scalar path).
                total = a.total_bytes
                self.analytic.written_dirty_bytes += total
                self.analytic.spilled_dirty_bytes += total
        c.l1_txns += l1
        c.l2_txns += l2
        c.dram_read_txns += dr
        c.dram_write_txns += dw

    def _span_delta(self, span: BatchSpan) -> tuple[int, int, int, int] | None:
        """Array-arithmetic delta for a uniform run, or ``None`` if the
        run's class is state-dependent (blocked LRU, fitting dense, pinned
        first touch) and must fall back to the exact per-row walk."""
        line = self.line
        offs = span.offsets
        nb = span.nbytes
        lines = int(((offs + (nb - 1)) // line - offs // line).sum()) + span.count
        if span.on_chip:
            return (lines, 0, 0, 0)
        bid = span.buffer.buffer_id
        if span.assume_l2 or (bid in self._pinned and bid in self._pinned_seen):
            return (lines, lines, 0, 0)
        if bid in self._pinned:
            return None
        if span.dense and span.buffer.nbytes > self.analytic.capacity:
            txns = _txns(nb, line) * span.count
            if span.write:
                total = nb * span.count
                self.analytic.written_dirty_bytes += total
                self.analytic.spilled_dirty_bytes += total
                return (lines, lines, 0, txns)
            return (lines, lines, txns, 0)
        return None

    def _drain_evictions(self) -> None:
        dirty = self.l2.drain_evicted_dirty()
        if dirty:
            self.counters.dram_write_txns += _txns(dirty, self.line)

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        """Cache-model accounting beyond the transaction counters: per-level
        hit/miss bytes and where every dirty byte went (evicted vs flushed
        vs discarded).  Feeds the metrics registry and Perfetto counter
        tracks."""
        return {
            "l1": self.l1.stats(),
            "l2": self.l2.stats(),
            "analytic": self.analytic.stats(),
            "analytic_resident_bytes": self.analytic.total(),
            "pinned_buffers": len(self._pinned),
        }

    # -- lifetime management -----------------------------------------------
    def discard(self, buffer: Buffer) -> None:
        """Drop a (transient) buffer's cached data without write-back."""
        self.l1.discard(buffer.buffer_id)
        self.l2.discard(buffer.buffer_id)
        self.analytic.discard(buffer.buffer_id)

    def flush(self) -> None:
        """End of run: write back dirty data of *persistent* buffers."""
        dirty = 0
        for key, dirty_bytes in list(self.l2._lru.items()):
            buf = self._buffers.get(key[0])
            if dirty_bytes and (buf is None or not buf.transient):
                dirty += dirty_bytes
                self.l2._lru[key] = 0
        dirty += self.analytic.flush(self._buffers)
        self.counters.dram_write_txns += _txns(dirty, self.line)
