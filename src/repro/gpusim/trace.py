"""Access-trace primitives: buffers, byte-range accesses, and tasks.

Executors describe their memory behavior as streams of byte-range accesses
against named buffers; the memory system converts those streams into
transaction counts.  A :class:`Task` is one fine-grained kernel invocation
(a brick or tile computation) with its accesses, flop count and atomic
activity -- the unit the SM scheduler places on the device.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Buffer", "Access", "BatchSpan", "Task", "buffer_token", "brick_token"]

_buffer_ids = itertools.count()


def buffer_token(buffer: "Buffer") -> tuple:
    """Synchronization token covering a whole buffer (kernel-launch edges:
    a producing kernel completed before the consuming kernel launched)."""
    return ("buf", buffer.buffer_id)


def brick_token(buffer: "Buffer", offset: int) -> tuple:
    """Synchronization token for one brick (the memoized 0->1->2 CAS
    protocol: release on completion, acquire on a tag-checked read)."""
    return ("brick", buffer.buffer_id, offset)


@dataclass(frozen=True)
class Buffer:
    """A device memory allocation.

    ``transient`` buffers hold data that dies on-device (scratch bricks,
    intermediate activations inside a merged subgraph): they are discarded
    without DRAM write-back, modeling BrickDL's reuse of L2-resident
    intermediates (the "point of synchronization is L2", section 3.2.2).
    Persistent buffers (weights, subgraph inputs/outputs) write back.
    """

    buffer_id: int
    name: str
    nbytes: int
    transient: bool = False

    @staticmethod
    def new(name: str, nbytes: int, transient: bool = False) -> "Buffer":
        return Buffer(next(_buffer_ids), name, int(nbytes), transient)

    @property
    def kb(self) -> float:
        return self.nbytes / 1024.0


@dataclass(frozen=True)
class Access:
    """A byte-range load or store, possibly strided.

    ``reps`` describes nested repetition of the innermost contiguous segment
    (row-major region reads): each ``(count, stride)`` pair repeats the
    pattern ``count`` times at ``stride`` byte spacing, outermost first.  A
    plain contiguous access has ``reps == ()``.  E.g. reading a ``(C, h, w)``
    sub-box of a row-major ``(C, H, W)`` tensor is one access with segment
    ``w * itemsize`` and ``reps = ((C, H*W*item), (h, W*item))``.

    ``dense`` marks dense-activation traffic (row-major tensors; modeled with
    the analytic per-buffer residency model); unset means blocked/brick
    traffic (modeled with the sector LRU).  ``on_chip`` marks thread-block
    private traffic that never leaves the SM (padded-brick intermediate
    patches): it counts L1 transactions only.

    ``assume_l2`` marks reads the *executor* already knows are L2-resident:
    the memoized protocol synchronizes a brick's consumers around its
    completion, so they read it while it is still cached; a serialized
    simulation would otherwise charge those temporally-coalesced reads as
    capacity misses (see the memoized executor's coalescing window).
    """

    buffer: Buffer
    offset: int
    nbytes: int
    write: bool = False
    reps: tuple[tuple[int, int], ...] = ()
    dense: bool = False
    on_chip: bool = False
    assume_l2: bool = False
    # Derived geometry, precomputed once at construction: the memory system
    # reads these on every access, so recomputing them per use was a
    # measurable share of the per-task hot path.
    segments: int = field(init=False, repr=False, compare=False)
    total_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.offset < 0 or self.nbytes < 0:
            raise ValueError(f"negative access geometry: {self}")
        if any(c < 1 or s < 0 for c, s in self.reps):
            raise ValueError(f"invalid reps: {self.reps}")
        n = 1
        for c, _ in self.reps:
            n *= c
        object.__setattr__(self, "segments", n)
        object.__setattr__(self, "total_bytes", n * self.nbytes)
        if self.offset + self.span > self.buffer.nbytes:
            raise ValueError(
                f"access [{self.offset}, {self.offset + self.span}) exceeds "
                f"buffer {self.buffer.name!r} of {self.buffer.nbytes} bytes"
            )

    def __getattr__(self, name: str):
        # Hand-built accesses (replayed or corrupted traces constructed via
        # ``__new__``, as the sanitizer tests do) bypass ``__post_init__``;
        # derive the cached geometry lazily so they still flow through the
        # memory system.  Normal construction never reaches here.
        if name == "segments":
            n = 1
            for c, _ in self.reps:
                n *= c
            object.__setattr__(self, "segments", n)
            return n
        if name == "total_bytes":
            total = self.segments * self.nbytes
            object.__setattr__(self, "total_bytes", total)
            return total
        raise AttributeError(name)

    @property
    def span(self) -> int:
        """Extent from offset to the end of the last segment."""
        end = self.nbytes
        for c, s in self.reps:
            end += (c - 1) * s
        return end

    def byte_intervals(self, max_segments: int = 65536) -> tuple[list[tuple[int, int]], bool]:
        """The ``(start, end)`` byte ranges this access touches, merged.

        Returns ``(intervals, exact)``.  A contiguous access produces one
        interval; a strided access produces one per innermost segment with
        overlapping/adjacent segments merged.  Accesses wider than
        ``max_segments`` fall back to the conservative hull
        ``[offset, offset + span)`` with ``exact=False`` -- callers that
        need exactness (the sanitizers) treat hull intervals as approximate.
        """
        if not self.reps or self.nbytes == 0:
            return [(self.offset, self.offset + self.nbytes)], True
        if self.segments > max_segments:
            return [(self.offset, self.offset + self.span)], False
        starts = [self.offset]
        for count, stride in self.reps:
            starts = [s + i * stride for s in starts for i in range(count)]
        starts.sort()
        merged: list[tuple[int, int]] = []
        for s in starts:
            e = s + self.nbytes
            if merged and s <= merged[-1][1]:
                if e > merged[-1][1]:
                    merged[-1] = (merged[-1][0], e)
            else:
                merged.append((s, e))
        return merged, True


@dataclass(frozen=True)
class BatchSpan:
    """A uniform run of accesses inside ``Task.accesses``, in columnar form.

    Executors that emit many same-shaped accesses against one buffer (brick
    conversion sweeps, multi-brick region reads) record the run's geometry
    once as a numpy offset vector plus shared scalars.  The per-``Access``
    objects still exist in ``Task.accesses`` (the sanitizers and the scalar
    oracle consume them unchanged); the vectorized memory path instead reads
    the span and computes transaction counts with array arithmetic.

    ``start``/``count`` index into the owning task's access list; the rows
    ``accesses[start:start + count]`` are exactly the expansion of this span.
    """

    start: int
    count: int
    buffer: Buffer
    offsets: np.ndarray          # int64, one element per row
    nbytes: int                  # uniform contiguous bytes per row
    write: bool
    dense: bool
    on_chip: bool
    assume_l2: bool


@dataclass
class Task:
    """One fine-grained kernel invocation (brick/tile computation).

    ``atomics_compulsory`` / ``atomics_conflict`` follow the paper's 3C-style
    split (section 4.4): two compulsory CAS per memoized brick (acquire +
    release), conflicts when a dependent brick is found in-progress.
    ``visits`` counts memo-table lookups (recursion overhead, lands in the
    "Other" time).

    Structured identity (no label parsing needed downstream):

    * ``node_id`` -- the graph node this task computes (or converts);
    * ``subgraph_index`` / ``strategy`` -- the plan entry and execution
      strategy, stamped by the submitting scope (see ``Device.scope``);
    * ``worker`` -- the virtual worker / SM lane the task ran on (assigned
      by the device at submit time if the executor did not choose one);
    * ``start_s`` / ``end_s`` -- issue-order timeline position, assigned by
      the device from the ``spec.task_time`` model;
    * ``brick`` / ``batch_index`` -- for brick-granular tasks (the merged
      executors), the grid position and batch sample this task computes:
      the identity the trace-replay checker uses to assert the
      exactly-once and happens-before protocol properties.

    Synchronization edges (consumed by the execution sanitizer's
    happens-before race detector, :mod:`repro.sanitize`):

    * ``acquires`` -- tokens whose latest release this task synchronized
      with before reading (the consumer side of a memoized tag check, or
      the implicit kernel-launch ordering against an earlier conversion
      kernel's output buffer);
    * ``releases`` -- tokens this task publishes on completion (the
      producer side: the release CAS of a memoized brick, or a whole
      output buffer at a kernel boundary).
    """

    label: str
    flops: float = 0.0
    accesses: list[Access] = field(default_factory=list)
    atomics_compulsory: int = 0
    atomics_conflict: int = 0
    visits: int = 0
    calls: int = 1  # fine-grained kernel invocations inside this task
    node_id: int | None = None
    subgraph_index: int | None = None
    strategy: str | None = None
    worker: int | None = None
    start_s: float | None = None
    end_s: float | None = None
    brick: tuple[int, ...] | None = None
    batch_index: int | None = None
    acquires: list[tuple] = field(default_factory=list)
    releases: list[tuple] = field(default_factory=list)
    batch_spans: list[BatchSpan] = field(default_factory=list)
    # Distributed-trace provenance ``(trace_id, parent_span_id)``, stamped by
    # the device when a serve-layer trace context is active (see
    # ``Device.set_trace_context``); ``None`` on untraced runs.
    trace: tuple[str, str] | None = None

    def acquire(self, token: tuple) -> None:
        """Stamp an acquire edge: this task synchronized with ``token``'s
        latest release before reading the data it guards."""
        self.acquires.append(token)

    def release(self, token: tuple) -> None:
        """Stamp a release edge: this task publishes ``token`` on completion."""
        self.releases.append(token)

    @property
    def duration_s(self) -> float:
        if self.start_s is None or self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def read(self, buffer: Buffer, offset: int, nbytes: int, reps: tuple[tuple[int, int], ...] = (),
             dense: bool = False, on_chip: bool = False, assume_l2: bool = False) -> None:
        if nbytes > 0:
            self.accesses.append(Access(buffer, offset, nbytes, write=False, reps=reps,
                                        dense=dense, on_chip=on_chip, assume_l2=assume_l2))

    def write(self, buffer: Buffer, offset: int, nbytes: int, reps: tuple[tuple[int, int], ...] = (),
              dense: bool = False, on_chip: bool = False) -> None:
        if nbytes > 0:
            self.accesses.append(Access(buffer, offset, nbytes, write=True, reps=reps,
                                        dense=dense, on_chip=on_chip))

    def _emit_batch(self, buffer: Buffer, offsets, nbytes: int, write: bool,
                    dense: bool, on_chip: bool, assume_l2: bool) -> None:
        offs = np.ascontiguousarray(np.asarray(offsets, dtype=np.int64))
        if offs.size == 0 or nbytes <= 0:
            return
        lo = int(offs.min())
        hi = int(offs.max()) + nbytes
        if lo < 0 or hi > buffer.nbytes:
            raise ValueError(
                f"batch access [{lo}, {hi}) exceeds buffer "
                f"{buffer.name!r} of {buffer.nbytes} bytes")
        self.batch_spans.append(BatchSpan(
            start=len(self.accesses), count=offs.size, buffer=buffer,
            offsets=offs, nbytes=nbytes, write=write, dense=dense,
            on_chip=on_chip, assume_l2=assume_l2))
        # Rows are constructed directly: the whole batch was bounds-checked
        # above (uniform nbytes, contiguous, reps=()), so re-validating per
        # row in __post_init__ would only repeat the same comparisons.
        append = self.accesses.append
        new = Access.__new__
        sa = object.__setattr__
        for off in offs.tolist():
            a = new(Access)
            sa(a, "buffer", buffer)
            sa(a, "offset", off)
            sa(a, "nbytes", nbytes)
            sa(a, "write", write)
            sa(a, "reps", ())
            sa(a, "dense", dense)
            sa(a, "on_chip", on_chip)
            sa(a, "assume_l2", assume_l2)
            sa(a, "segments", 1)
            sa(a, "total_bytes", nbytes)
            append(a)

    def read_batch(self, buffer: Buffer, offsets, nbytes: int,
                   dense: bool = False, on_chip: bool = False,
                   assume_l2: bool = False) -> None:
        """Emit one read per element of ``offsets`` (uniform ``nbytes`` each).

        Equivalent to calling :meth:`read` in a loop, but additionally
        records a :class:`BatchSpan` so the vectorized memory path can
        account the run with array arithmetic instead of per-access work.
        """
        self._emit_batch(buffer, offsets, nbytes, write=False, dense=dense,
                         on_chip=on_chip, assume_l2=assume_l2)

    def write_batch(self, buffer: Buffer, offsets, nbytes: int,
                    dense: bool = False, on_chip: bool = False) -> None:
        """Batched form of :meth:`write`; see :meth:`read_batch`."""
        self._emit_batch(buffer, offsets, nbytes, write=True, dense=dense,
                         on_chip=on_chip, assume_l2=False)

    @property
    def bytes_read(self) -> int:
        return sum(a.total_bytes for a in self.accesses if not a.write)

    @property
    def bytes_written(self) -> int:
        return sum(a.total_bytes for a in self.accesses if a.write)
