"""Atomic-operation accounting (the memoized-bricks synchronization cost).

The paper models every atomic CAS at a flat calibrated cost
(``T_atomic = 87.45 ns`` on A100, section 4.3.1) and splits counts 3C-style
into *compulsory* (two per brick: acquire + release) and *conflict* (a CAS
that observed another thread's in-progress tag) atomics (section 4.4).
This module accumulates those counts and converts them to time.

It also hosts the synthetic CAS microbenchmark model used by
``benchmarks/bench_atomics_model.py`` to re-derive ``T_atomic`` the way the
paper does: one thread per private cache line, 10^6 CAS each, rate = N ops /
elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import GPUSpec

__all__ = ["AtomicCounters", "cas_microbenchmark_time"]


@dataclass
class AtomicCounters:
    """Counts of atomic transactions, split like the paper's Fig. 8."""

    compulsory: int = 0
    conflict: int = 0

    @property
    def total(self) -> int:
        return self.compulsory + self.conflict

    def time(self, spec: GPUSpec) -> float:
        return self.total * spec.atomic_time_s

    def compulsory_time(self, spec: GPUSpec) -> float:
        return self.compulsory * spec.atomic_time_s

    def conflict_time(self, spec: GPUSpec) -> float:
        return self.conflict * spec.atomic_time_s

    def merged_with(self, other: "AtomicCounters") -> "AtomicCounters":
        return AtomicCounters(self.compulsory + other.compulsory, self.conflict + other.conflict)


def cas_microbenchmark_time(
    spec: GPUSpec,
    num_threads: int = 32 * 64 * 1024 // 32,
    ops_per_thread: int = 10**6,
) -> tuple[float, float]:
    """Model the paper's CAS microbenchmark (section 4.3.1).

    A ``32 x 64K`` byte array gives one 32 B cache line per thread (64 K
    threads), each issuing ``10^6`` conflict-free CAS operations.  Atomics
    are serviced at the L2 atomic units; with no conflicts the device
    pipelines them across SMs, so the aggregate rate is
    ``num_sms / T_atomic_issue`` -- we invert the paper's arithmetic and
    report the per-op latency it would measure.

    Returns ``(total_time, time_per_atomic)`` where ``time_per_atomic`` is
    by construction ``spec.atomic_time_s`` when the benchmark saturates the
    atomic pipeline, matching the paper's 87.45 ns.
    """
    total_ops = num_threads * ops_per_thread
    # Conflict-free CAS to private lines: throughput-limited, one op retired
    # per atomic-unit slot every atomic_time_s across the device.
    total_time = total_ops * spec.atomic_time_s
    rate = total_ops / total_time
    return total_time, 1.0 / rate
