"""Setup shim: this environment lacks the `wheel` package, so modern PEP 660
editable installs fail; the legacy `setup.py develop` path works offline."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="BrickDL reproduction: graph-level DNN optimizations with fine-grained data blocking (ICPP 2024)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
