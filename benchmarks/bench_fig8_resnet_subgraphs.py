"""Fig. 8: ResNet-50 case study -- per-subgraph time breakdowns for
cuDNN / padded bricks / memoized bricks.

Paper shape: both merged strategies beat the tiled cuDNN baseline on the
early subgraphs; padded is relatively better on the earliest (large-layer)
subgraphs, memoized on the deeper/smaller ones where padding growth delta
exceeds 15 %.
"""

from benchlib import run_once

from repro.bench import figures


def test_fig8_resnet_case_study(benchmark):
    result = run_once(benchmark, figures.fig8_resnet_case_study)
    print()
    print(result.render())

    wins = 0
    for group, rows in result.groups.items():
        base = rows[0]
        padded = next(r for r in rows if r.label == "padded")
        memo = next(r for r in rows if r.label == "memoized")
        if min(padded.total, memo.total) < base.total:
            wins += 1
        # The breakdown identities of the paper's bars must hold per run.
        for r in rows:
            assert abs(r.total - (r.idle + r.dram)) < 1e-9
            assert abs(r.total - (r.other + r.compute + r.atomics_compulsory + r.atomics_conflict)) < 1e-9
        # Memoized pays atomics, padded does not.
        assert memo.atomics_compulsory_count > 0
        assert padded.atomics_compulsory_count == 0
    # Merged execution wins most subgraphs.
    assert wins >= len(result.groups) // 2 + 1, f"merged won only {wins}/{len(result.groups)}"
