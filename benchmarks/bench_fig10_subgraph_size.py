"""Fig. 10: merge-depth sweep on the six-layer 3-D conv proxy.

Paper shape (at 112^3): moderate merges (3+3) give the best memoized result
(12 % over cuDNN, -16.2 % DRAM transfer time); merging all six layers causes
a significant slowdown for padded bricks (redundant halo compute explodes)
and is the worst memoized configuration; 2-layer merges bring little.

The shape assertions run at ``half``/``full`` scale (the paper's 112^3);
``small`` (56^3) is a smoke run.
"""

from benchlib import run_once

from repro.bench import figures
from repro.bench.harness import scale_preset


def _rows_by_label(result):
    rows = result.groups["6-layer CNN proxy"]
    return rows[0], {r.label: r for r in rows[1:]}


def test_fig10_subgraph_size(benchmark):
    result = run_once(benchmark, figures.fig10_subgraph_size)
    print()
    print(result.render())

    base, by = _rows_by_label(result)
    # Six-layer padded merge explodes (redundant halo compute).
    assert by["6 padded"].total > 1.5 * base.total
    assert by["6 padded"].compute > 2 * base.compute
    # Conflict atomics grow with merge depth for memoized bricks.
    c = [by[f"{cfg} memoized"].atomics_conflict_count for cfg in ("2+2+2", "3+3", "6")]
    assert c[0] < c[2]

    if scale_preset() in ("half", "full"):
        # Moderate merges beat the baseline; 6-merge is the worst memoized
        # configuration and 2-layer merges are not the best.
        assert min(by["3+3 padded"].total, by["3+3 memoized"].total) < base.total
        memoized = {cfg: by[f"{cfg} memoized"].total for cfg in ("2+2+2", "3+3", "4+2", "6")}
        assert memoized["6"] == max(memoized.values())
        # Merged execution reduces DRAM transactions vs the tiled baseline.
        assert by["3+3 memoized"].dram_txns < base.dram_txns
