"""Batch-size sweep: merged execution vs the tiled baseline as batch grows.

The paper evaluates batch-1 inference; BrickDL also blocks along the batch
dimension (section 3.2), so larger batches multiply brick-level parallelism.
This bench records how the BrickDL-vs-cuDNN ratio evolves with batch.
"""

from benchlib import run_once

from repro.baselines import CudnnBaseline
from repro.bench.harness import run_brickdl, run_conventional, scale_preset
from repro.bench.reporting import format_table
from repro.models import zoo

_SIZE = {"small": 96, "half": 160, "full": 224}


def test_batch_sweep(benchmark):
    size = _SIZE[scale_preset()]

    def experiment():
        out = {}
        for batch in (1, 2, 4):
            row, _ = run_brickdl(zoo.MODELS["resnet50"](image_size=size, batch=batch))
            base = run_conventional(CudnnBaseline,
                                    zoo.MODELS["resnet50"](image_size=size, batch=batch))
            out[batch] = (row, base)
        return out

    out = run_once(benchmark, experiment)
    rows = []
    for batch, (row, base) in out.items():
        rows.append([batch, f"{row.total / base.total:.3f}",
                     f"{(1 - row.dram_txns / base.dram_txns) * 100:+.1f}%",
                     row.num_tasks, base.num_tasks])
    print()
    print(format_table(["batch", "brickdl vs cudnn", "DRAM txns saved",
                        "brick tasks", "baseline tasks"],
                       rows, title=f"ResNet-50 @ {size}: batch sweep"))

    # Work grows with batch for both systems (sub-linearly when the extra
    # samples merely fill otherwise-idle SMs), and batching never *hurts*
    # the merged execution's standing: more samples = more brick-level
    # parallelism.
    t1, b1 = out[1]
    t4, b4 = out[4]
    assert t4.total > t1.total and b4.total > b1.total
    assert t4.total / b4.total <= t1.total / b1.total + 0.02
