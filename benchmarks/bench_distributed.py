"""Extension bench: merged halo exchange for spatial model parallelism
(paper section 5.2's proposed extension).

Measures, on the 6-layer 3-D proxy distributed over 4 simulated GPUs, how
merge depth trades exchange count (latency) against redundant halo compute
-- while total halo volume telescopes to the same bytes.
"""

import numpy as np

from benchlib import run_once

from repro.bench.harness import scale_preset
from repro.bench.proxies import six_layer_proxy
from repro.bench.reporting import format_table
from repro.distributed import CommModel, DistributedRunner

_SIZE = {"small": 40, "half": 64, "full": 112}


def test_distributed_merge_depth(benchmark):
    size = _SIZE[scale_preset()]

    def experiment():
        results = {}
        for depth in (1, 2, 3, 6):
            runner = DistributedRunner(six_layer_proxy(size=size), num_ranks=4,
                                       layer_schedule=(depth,), comm=CommModel())
            results[depth] = runner.run(functional=False)
        return results

    results = run_once(benchmark, experiment)

    rows = []
    for depth, res in results.items():
        rows.append([depth, res.num_subgraphs, res.comm.messages,
                     f"{res.comm.bytes / 1e6:.1f}", f"{res.comm.time_s * 1e6:.1f}",
                     f"{sum(res.per_rank_flops) / 1e9:.2f}"])
    print()
    print(format_table(
        ["merge depth", "exchanges", "messages", "halo MB", "comm us", "GFLOP"],
        rows, title=f"6-layer 3-D proxy @ {size}^3 over 4 ranks"))

    # The section-5.2 tradeoff, asserted:
    assert results[1].comm.messages > results[3].comm.messages > results[6].comm.messages
    assert results[6].comm.time_s < results[1].comm.time_s
    assert sum(results[6].per_rank_flops) > sum(results[1].per_rank_flops)
    # Halo volume nearly telescopes: deeper merges concentrate the exchange
    # on the (larger) early layers of the shrinking chain, so bytes grow
    # mildly while message count drops 4x.
    assert results[6].comm.bytes <= 1.4 * results[1].comm.bytes
