"""Serving-layer benchmark: dynamic batching under open-loop traffic.

Drives the ``repro.serve`` stack (admission queue, dynamic batcher, plan
cache, round-robin device fleet) with Poisson arrivals at a few rates and
reports latency quantiles, throughput, batch formation, and plan-cache
behavior -- the Clipper-style serving numbers the ROADMAP's
"heavy traffic" north star is measured by.
"""

from benchlib import run_once

from repro.bench.harness import run_serve_loadgen, scale_preset
from repro.bench.reporting import format_table

_REQUESTS = {"small": 60, "half": 200, "full": 500}
_RATES = (50.0, 200.0)


def test_serve_poisson_sweep(benchmark):
    requests = _REQUESTS[scale_preset()]

    def experiment():
        out = {}
        for rate in _RATES:
            report, _ = run_serve_loadgen(
                "mobilenet_v1", requests=requests, devices=2, rate=rate,
                functional=False, reduced=True, seed=0)
            out[rate] = report
        return out

    out = run_once(benchmark, experiment)
    rows = []
    for rate, r in out.items():
        rows.append([f"{rate:.0f}/s", r.completed,
                     f"{r.throughput_rps:.1f}/s",
                     f"{r.p50_s * 1e3:.1f}", f"{r.p99_s * 1e3:.1f}",
                     f"{r.mean_batch:.2f}", f"{r.cache_hit_ratio:.1%}"])
    print()
    print(format_table(
        ["arrival rate", "served", "throughput", "p50 ms", "p99 ms",
         "mean batch", "plan-cache hits"],
        rows, title=f"mobilenet_v1 serving: {requests} requests, 2 devices"))
