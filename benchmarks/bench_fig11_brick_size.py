"""Fig. 11: brick-size sweep on the three-layer 3-D conv proxy.

Paper shape (at 224^3): 4^3 bricks are the worst (padding data + atomic
overhead), 32^3 bricks are poor (coarse-grained parallelism), and the sweet
spot is in the middle (the paper measures 16^3 memoized best, 13.5 % over
cuDNN, -17.8 % DRAM).  At the default 112^3 scale the same U-shape holds
with the optimum between 8^3 and 16^3, exactly where the tau model puts it.
"""

from benchlib import run_once

from repro.bench import figures
from repro.bench.harness import scale_preset


def test_fig11_brick_size(benchmark):
    result = run_once(benchmark, figures.fig11_brick_size)
    print()
    print(result.render())

    rows = result.groups["3-layer CNN proxy"]
    base = rows[0]
    by = {r.label: r for r in rows[1:]}

    best = {b: min(by[f"B{b} padded"].total, by[f"B{b} memoized"].total) for b in (4, 8, 16, 32)}
    # U-shape: the extremes lose to the middle.
    assert best[4] > min(best[8], best[16])
    assert best[32] > min(best[8], best[16])
    # 4^3 padded suffers the most from halo data (L1 overfetch is maximal).
    assert by["B4 padded"].l1_txns == max(r.l1_txns for r in rows[1:] if "padded" in r.label)
    # 4^3 memoized executes the most atomics (most bricks).
    assert by["B4 memoized"].atomics_compulsory_count == max(
        r.atomics_compulsory_count for r in rows[1:]
    )
    if scale_preset() in ("half", "full"):
        # The mid-size bricks beat the cuDNN baseline.
        assert min(best[8], best[16]) < base.total
