"""Section 4.3.2: the brick-compute microbenchmark deriving T_brick.

Paper result: T_brick = 6.72 us for an 8x8x8 brick with a 3x3x3 filter.
"""

from benchlib import run_once

from repro.bench.microbench import compute_microbenchmark


def test_compute_microbenchmark(benchmark):
    result = run_once(benchmark, compute_microbenchmark)
    print(
        f"\n[4.3.2] brick-compute microbenchmark: {result.brick} brick, "
        f"{result.kernel} filter -> T_brick = {result.time_per_call_us:.2f} us"
        f"  (paper: 6.72 us)"
    )
    assert abs(result.time_per_call_us - 6.72) < 0.05


def test_compute_microbenchmark_scales_with_brick(benchmark):
    small = compute_microbenchmark(brick=(4, 4, 4))
    big = run_once(benchmark, lambda: compute_microbenchmark(brick=(16, 16, 16)))
    print(
        f"\n[4.3.2] T_brick scaling: 4^3 -> {small.time_per_call_us:.2f} us, "
        f"16^3 -> {big.time_per_call_us:.2f} us"
    )
    assert big.time_per_call_us > small.time_per_call_us
