"""Ablations of BrickDL's design constants (DESIGN.md experiment index).

* delta threshold (section 3.3.2's 15 % rule) vs the measured-best strategy,
* tau (section 3.3.3's 2^12 parallelism ceiling) vs the measured-best brick,
* L2 capacity vs the best merge configuration (the partitioner's budget
  premise).
"""

from benchlib import run_once

from repro.bench import figures


def test_ablation_delta_threshold(benchmark):
    table = run_once(benchmark, lambda: figures.ablation_delta_threshold(num_subgraphs=4))
    print()
    print(table)
    assert "15%" in table


def test_ablation_tau(benchmark):
    table = run_once(benchmark, figures.ablation_tau)
    print()
    print(table)
    # The model must react to tau: different ceilings -> different bricks.
    import re

    bricks = {int(m) for m in re.findall(r"\|\s+(\d+)\s+\|\s+\d+\s*$", table, re.M)}
    assert len(bricks) >= 1


def test_ablation_l2_capacity(benchmark):
    table = run_once(benchmark, figures.ablation_l2_capacity)
    print()
    print(table)
    assert "L2" in table


def test_ablation_cross_architecture(benchmark):
    table = run_once(benchmark, lambda: figures.ablation_cross_architecture(num_subgraphs=3))
    print()
    print(table)
    assert "MI100" in table and "A100" in table


def test_ablation_model_depth(benchmark):
    """The paper: "deeper models benefit even better from BrickDL, with the
    ability to merge layers in more subgraphs" -- ResNet-101 vs ResNet-50."""
    from repro.bench.harness import run_brickdl, run_conventional, scale_preset
    from repro.baselines import CudnnBaseline
    from repro.models import zoo

    size = {"small": 96, "half": 160, "full": 224}[scale_preset()]

    def experiment():
        out = {}
        for name in ("resnet50", "resnet101"):
            row, plan = run_brickdl(zoo.MODELS[name](image_size=size))
            base = run_conventional(CudnnBaseline, zoo.MODELS[name](image_size=size))
            out[name] = (row.total / base.total, sum(1 for s in plan.subgraphs if s.is_merged))
        return out

    out = run_once(benchmark, experiment)
    print()
    for name, (ratio, merged) in out.items():
        print(f"  {name}: {ratio:.3f}x cuDNN, {merged} merged subgraphs")
    # The deeper model offers at least as many merged subgraphs.
    assert out["resnet101"][1] >= out["resnet50"][1]
