"""Section 4.3.1: the CAS-rate microbenchmark deriving T_atomic.

Paper result: T_atomic = 87.45 ns on NVIDIA A100.
"""

from benchlib import run_once

from repro.bench.microbench import atomic_microbenchmark


def bench_atomic_microbenchmark(benchmark):
    result = run_once(benchmark, atomic_microbenchmark)
    print(
        f"\n[4.3.1] CAS microbenchmark: {result.num_threads} threads x "
        f"{result.ops_per_thread:.0e} ops -> T_atomic = "
        f"{result.time_per_atomic_ns:.2f} ns  (paper: 87.45 ns)"
    )
    assert abs(result.time_per_atomic_ns - 87.45) < 0.01


def test_atomic_microbenchmark(benchmark):
    bench_atomic_microbenchmark(benchmark)
