"""Shared benchmark configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark executes a
full experiment from the paper's evaluation once (``rounds=1`` -- the
measured quantity is the simulated-device metrics, printed as tables; the
wall-clock pytest-benchmark reports is the simulation cost itself).

Scale is controlled by ``BRICKDL_SCALE`` in {small, half, full}; ``small``
(default) is a smoke-scale run, ``half``/``full`` reproduce the paper's
sizes (see EXPERIMENTS.md).
"""

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
