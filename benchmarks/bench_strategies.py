"""Extension ablation: the three merged strategies head-to-head, and the
empirical tuner vs the static performance models.

Wavefront execution (paper section 6's suggested follow-up) recomputes
nothing and issues no atomics; its cost is one synchronization per skewed
wave and reduced parallelism on boundary waves.  This bench places it
against padded and memoized bricks on the 3-layer conv proxy, and runs the
tuner's model-agreement report on a small CNN.
"""

from benchlib import run_once

from repro.baselines import CudnnBaseline
from repro.bench.harness import run_brickdl, run_conventional, scale_preset
from repro.bench.proxies import three_layer_proxy
from repro.bench.reporting import format_breakdowns
from repro.core.plan import Strategy

_SIZE = {"small": 56, "half": 112, "full": 112}


def test_three_strategies(benchmark):
    size = _SIZE[scale_preset()]

    def experiment():
        rows = [run_conventional(CudnnBaseline, three_layer_proxy(size=size))]
        for strategy in (Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT):
            row, _ = run_brickdl(three_layer_proxy(size=size), strategy=strategy,
                                 brick=8, layer_schedule=(3,), label=strategy.value)
            rows.append(row)
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_breakdowns(rows, title=f"3-layer proxy @ {size}^3: strategies",
                            relative_to=rows[0]))
    by = {r.label: r for r in rows}
    # Wavefront has memoized's exactly-once compute without its atomics.
    assert by["wavefront"].atomics_compulsory_count == 0
    assert by["wavefront"].compute <= by["padded"].compute
    # Padded recomputes halos: strictly more flops than the others.
    assert by["padded"].compute > by["memoized"].compute


def test_tuner_agreement(benchmark):
    from repro.core.tuner import tune_plan
    from repro.models import zoo

    def experiment():
        graph = zoo.MODELS["vgg16"](image_size=96)
        return tune_plan(graph, bricks=(4, 8))

    _, report = run_once(benchmark, experiment)
    print()
    print(report.summary())
    assert report.choices
    for c in report.choices:
        assert c.time <= c.model_time + 1e-12  # tuning never loses
