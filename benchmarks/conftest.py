"""Benchmark suite conftest (shared helpers live in benchlib.py)."""
