"""Fig. 9: ResNet-50 data movement -- L1/L2/DRAM transactions of padded and
memoized bricks relative to the cuDNN baseline, per subgraph.

Paper shape: DRAM transactions drop (up to -21 %), traded against higher L2
and L1 (overfetch from padded halos) transaction counts.
"""

from benchlib import run_once

from repro.bench import figures


def test_fig9_data_movement(benchmark):
    fig8 = run_once(benchmark, figures.fig8_resnet_case_study)
    print()
    print(figures.fig9_data_movement(fig8))

    dram_reduced = 0
    l1_increased = 0
    total = 0
    for group, rows in fig8.groups.items():
        base = rows[0]
        for r in rows[1:]:
            total += 1
            norm = r.normalized_to(base)
            if norm["dram_txns"] < 1.0:
                dram_reduced += 1
            if norm["l1_txns"] > 1.0:
                l1_increased += 1
    # The paper's signature: DRAM down for most configurations, L1 up
    # (halo overfetch / brick-grain requests).
    assert dram_reduced >= total * 0.6, f"DRAM reduced in only {dram_reduced}/{total}"
    assert l1_increased >= total * 0.6, f"L1 increased in only {l1_increased}/{total}"
