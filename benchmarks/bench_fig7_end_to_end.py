"""Fig. 7: end-to-end inference of the seven models under cuDNN / BrickDL /
TorchScript / XLA.

Paper shape: BrickDL outperforms the cuDNN baseline on every model
(9-17 %), with the largest gain on DarkNet-53 (17.4 %, and a 16.5 % DRAM
transfer-time reduction); TorchScript and XLA fall between.  Shape checks
below are asserted at ``full`` scale and reported (not asserted) at the
smoke scales, where activations are too small for DRAM effects to dominate.
"""

import os

from benchlib import run_once

from repro.bench import figures
from repro.bench.harness import scale_preset


def test_fig7_end_to_end(benchmark):
    result = run_once(benchmark, figures.fig7_end_to_end)
    print()
    print(figures.fig7_summary_table(result))

    ratios = {}
    for model, rows in result.groups.items():
        base = rows[0]
        brick = next(r for r in rows if r.label == "brickdl")
        ratios[model] = brick.total / base.total

    if scale_preset() == "full":
        # BrickDL wins on the conv-heavy 2-D models at paper scale.
        for model in ("resnet50", "vgg16", "inception_v4", "darknet53"):
            assert ratios[model] < 1.0, f"{model}: BrickDL {ratios[model]:.3f} vs cuDNN"
        # DRAM transfer time reduced on every 2-D model.
        for model, rows in result.groups.items():
            base, brick = rows[0], next(r for r in rows if r.label == "brickdl")
            if model in ("resnet50", "darknet53", "vgg16", "drn26", "inception_v4"):
                assert brick.dram_txns < base.dram_txns, f"{model} DRAM not reduced"
